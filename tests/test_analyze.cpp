// Tests for the post-mortem trace analyzer (src/obs/analyze.hpp): DAG
// reconstruction and measured work/span on hand-built synthetic traces with
// hand-computed expectations, idle-time attribution (join-wait vs data-wait
// vs other), abort/resume latency, tolerance to truncated traces, the raw
// trace format round trip, and an end-to-end capture of a real fork-join
// execution.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "forkjoin/task_group.hpp"
#include "forkjoin/worker_pool.hpp"
#include "obs/analyze.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace rdp;
using obs::event;
using obs::event_kind;

constexpr double kMs = 1e-6;   // ns -> ms
constexpr double kTol = 1e-9;  // exact integer-ns inputs, so tight

/// Build one event; tests assemble traces as plain time-sorted vectors.
event ev(std::uint64_t ts, std::int32_t tid, event_kind kind,
         std::uint64_t arg0 = 0, std::uint64_t arg1 = 0,
         std::uint16_t name = 0) {
  event e;
  e.ts_ns = ts;
  e.tid = tid;
  e.kind = kind;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.name = name;
  return e;
}

std::vector<obs::phase_metrics> analyze(const std::vector<event>& events) {
  return obs::analyze_trace(
      events, [](std::uint16_t id) { return "name" + std::to_string(id); });
}

// ------------------------------------------- fork-join diamond (F1) ----

// tid0 runs task A [0,80]: spawns X@10 and Y@12, joins [20,60], and during
// the join helps by running Y [25,45] nested. tid1 runs X [15,55].
//
// Exclusive busy: A 40 (= [0,20] + [60,80]), X 40, Y 20 -> work 100.
// Critical path: A's prefix up to the X-spawn (10) -> X (40) -> A's
// post-join segment (20) = 70.
// tid0 join-wait: [20,25] + [45,60] = 20; tid1 never waits: 40 idle is
// "other" (nothing to steal).
std::vector<event> diamond() {
  return {
      ev(0, 0, event_kind::phase_begin, 0, 0, 1),
      ev(0, 0, event_kind::task_run_begin, 100),
      ev(10, 0, event_kind::task_spawn, 0, 200),
      ev(12, 0, event_kind::task_spawn, 0, 300),
      ev(15, 1, event_kind::task_run_begin, 200),
      ev(20, 0, event_kind::join_begin, 500, 2),
      ev(25, 0, event_kind::task_run_begin, 300),
      ev(45, 0, event_kind::task_run_end, 300),
      ev(55, 1, event_kind::task_run_end, 200),
      ev(60, 0, event_kind::join_end, 500),
      ev(80, 0, event_kind::task_run_end, 100),
  };
}

TEST(Analyze, DiamondWorkSpanAndJoinWait) {
  const auto phases = analyze(diamond());
  ASSERT_EQ(phases.size(), 1u);
  const obs::phase_metrics& p = phases[0];
  EXPECT_EQ(p.phase, "name1");
  EXPECT_EQ(p.threads, 2u);
  EXPECT_EQ(p.tasks, 3u);
  EXPECT_EQ(p.aborted_tasks, 0u);
  EXPECT_EQ(p.unmatched, 0u);
  EXPECT_NEAR(p.wall_ms, 80 * kMs, kTol);
  EXPECT_NEAR(p.work_ms, 100 * kMs, kTol);
  EXPECT_NEAR(p.span_ms, 70 * kMs, kTol);
  EXPECT_NEAR(p.parallelism(), 100.0 / 70.0, 1e-9);
  EXPECT_EQ(p.spawn_edges, 2u);
  EXPECT_EQ(p.join_edges, 2u);
  EXPECT_EQ(p.data_edges, 0u);
  EXPECT_NEAR(p.busy_ms, 100 * kMs, kTol);
  EXPECT_NEAR(p.join_wait_ms, 20 * kMs, kTol);
  EXPECT_NEAR(p.data_wait_ms, 0, kTol);
  EXPECT_NEAR(p.other_idle_ms, 40 * kMs, kTol);

  ASSERT_EQ(p.per_thread.size(), 2u);
  const obs::thread_breakdown& t0 = p.per_thread[0];
  const obs::thread_breakdown& t1 = p.per_thread[1];
  EXPECT_EQ(t0.tid, 0);
  EXPECT_NEAR(t0.busy_ms, 60 * kMs, kTol);       // A exclusive + helper Y
  EXPECT_NEAR(t0.join_wait_ms, 20 * kMs, kTol);  // join minus helping
  EXPECT_NEAR(t0.other_idle_ms, 0, kTol);
  EXPECT_EQ(t1.tid, 1);
  EXPECT_NEAR(t1.busy_ms, 40 * kMs, kTol);
  EXPECT_NEAR(t1.join_wait_ms, 0, kTol);
  EXPECT_NEAR(t1.other_idle_ms, 40 * kMs, kTol);
}

// --------------------------------------------- data-flow edges (F2) ----

// Producer [0,30] on tid0 puts key 77 at t=20; consumer [40,90] on tid1
// gets it at t=50. The only cross-task dependency is the data edge, so the
// span is producer-up-to-put (20) + consumer-from-get (40) = 60.
TEST(Analyze, DataEdgeSpanAndDataWait) {
  const std::uint16_t items = 2;
  const std::vector<event> events = {
      ev(0, 0, event_kind::phase_begin, 0, 0, 1),
      ev(0, 0, event_kind::task_run_begin, 100),
      ev(20, 0, event_kind::item_put, 77, 0, items),
      ev(30, 0, event_kind::task_run_end, 100),
      ev(40, 1, event_kind::task_run_begin, 200),
      ev(50, 1, event_kind::item_get, 77, 0, items),
      ev(90, 1, event_kind::task_run_end, 200),
  };
  const auto phases = analyze(events);
  ASSERT_EQ(phases.size(), 1u);
  const obs::phase_metrics& p = phases[0];
  EXPECT_EQ(p.tasks, 2u);
  EXPECT_EQ(p.data_edges, 1u);
  EXPECT_EQ(p.spawn_edges, 0u);
  EXPECT_NEAR(p.work_ms, 80 * kMs, kTol);
  EXPECT_NEAR(p.span_ms, 60 * kMs, kTol);
  EXPECT_EQ(p.unmatched, 0u);
}

// A blocking-get bracket on the environment thread is data-wait, not
// steal-failure idle.
TEST(Analyze, DataWaitBracketAttribution) {
  const std::uint16_t items = 2;
  const std::vector<event> events = {
      ev(0, 0, event_kind::phase_begin, 0, 0, 1),
      ev(10, 0, event_kind::data_wait_begin, 77, 0, items),
      ev(60, 0, event_kind::data_wait_end, 77, 0, items),
      ev(100, 0, event_kind::worker_park, 0),
  };
  const auto phases = analyze(events);
  ASSERT_EQ(phases.size(), 1u);
  const obs::phase_metrics& p = phases[0];
  ASSERT_EQ(p.per_thread.size(), 1u);
  EXPECT_NEAR(p.per_thread[0].data_wait_ms, 50 * kMs, kTol);
  EXPECT_NEAR(p.per_thread[0].busy_ms, 0, kTol);
  EXPECT_NEAR(p.per_thread[0].other_idle_ms, 50 * kMs, kTol);
  EXPECT_EQ(p.unmatched, 0u);
}

// ------------------------------------- abort / re-execution (CnC) ----

// First attempt of step 100 aborts at t=5 (parked on key 900); the putting
// task 200 resumes it at t=30 and re-spawns it at t=32; the re-execution
// runs [50,70]. The aborted attempt's busy time is rolled back out of the
// work, and the resume latency (30-5=25) is attributed.
TEST(Analyze, AbortResumeLatencyAndRollback) {
  const std::vector<event> events = {
      ev(0, 0, event_kind::phase_begin, 0, 0, 1),
      ev(0, 0, event_kind::task_run_begin, 100),
      ev(5, 0, event_kind::step_abort, 900),
      ev(10, 0, event_kind::task_run_end, 100),
      ev(20, 1, event_kind::task_run_begin, 200),
      ev(30, 1, event_kind::step_resume, 900),
      ev(32, 1, event_kind::task_spawn, 0, 100),
      ev(40, 1, event_kind::task_run_end, 200),
      ev(50, 0, event_kind::task_run_begin, 100),
      ev(70, 0, event_kind::task_run_end, 100),
  };
  const auto phases = analyze(events);
  ASSERT_EQ(phases.size(), 1u);
  const obs::phase_metrics& p = phases[0];
  EXPECT_EQ(p.tasks, 2u);
  EXPECT_EQ(p.aborted_tasks, 1u);
  EXPECT_NEAR(p.aborted_ms, 10 * kMs, kTol);
  EXPECT_EQ(p.suspensions, 1u);
  EXPECT_NEAR(p.suspend_latency_ms, 25 * kMs, kTol);
  EXPECT_NEAR(p.work_ms, 40 * kMs, kTol);  // 20 (task 200) + 20 (re-exec)
  // The spawn edge claims the RE-EXECUTION (t0 >= spawn ts), not the
  // aborted first attempt: span = task 200 up to the spawn (12) + 20.
  EXPECT_EQ(p.spawn_edges, 1u);
  EXPECT_NEAR(p.span_ms, 32 * kMs, kTol);
  EXPECT_EQ(p.unmatched, 0u);
}

// ------------------------------------------------- robustness ----

TEST(Analyze, TruncatedTraceCountsUnmatchedWithoutCrashing) {
  const std::vector<event> events = {
      ev(0, 0, event_kind::phase_begin, 0, 0, 1),
      ev(10, 0, event_kind::task_run_end, 5),  // end without begin
      ev(20, 0, event_kind::step_resume, 1),   // resume without abort
      ev(30, 0, event_kind::join_end, 9),      // join_end without begin
      ev(40, 1, event_kind::task_run_begin, 7),  // begin without end
  };
  const auto phases = analyze(events);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].unmatched, 4u);
  EXPECT_EQ(phases[0].tasks, 1u);  // the open run is force-closed
}

TEST(Analyze, MultiplePhasesSplitAtMarkers) {
  const std::vector<event> events = {
      ev(0, 0, event_kind::phase_begin, 0, 0, 1),
      ev(10, 0, event_kind::task_run_begin, 100),
      ev(30, 0, event_kind::task_run_end, 100),
      ev(50, 0, event_kind::phase_begin, 0, 0, 2),
      ev(60, 0, event_kind::task_run_begin, 200),
      ev(90, 0, event_kind::task_run_end, 200),
  };
  const auto phases = analyze(events);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].phase, "name1");
  EXPECT_EQ(phases[1].phase, "name2");
  EXPECT_NEAR(phases[0].work_ms, 20 * kMs, kTol);
  EXPECT_NEAR(phases[1].work_ms, 30 * kMs, kTol);
  EXPECT_NEAR(phases[1].wall_ms, 40 * kMs, kTol);  // marker at 50 to 90
}

// ------------------------------------------------ raw trace IO ----

TEST(RawTrace, RoundTripThroughText) {
  auto& t = obs::tracer::instance();
  t.start();
  t.set_thread_label("env of the round trip");
  const auto items = t.intern("items with spaces");
  t.emit(event_kind::item_put, items, 123456789, 42);
  t.emit(event_kind::task_steal, 0, 1, 2);
  t.begin_phase("phase label");
  t.stop();
  const auto events = t.collect();
  ASSERT_EQ(events.size(), 3u);

  std::ostringstream os;
  obs::write_raw_trace(os, events, t);
  std::istringstream is(os.str());
  const obs::raw_trace rt = obs::read_raw_trace(is);

  ASSERT_EQ(rt.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(rt.events[i].ts_ns, events[i].ts_ns);
    EXPECT_EQ(rt.events[i].tid, events[i].tid);
    EXPECT_EQ(rt.events[i].kind, events[i].kind);
    EXPECT_EQ(rt.events[i].arg0, events[i].arg0);
    EXPECT_EQ(rt.events[i].arg1, events[i].arg1);
    EXPECT_EQ(rt.name(rt.events[i].name), t.name(events[i].name));
  }
  EXPECT_EQ(rt.name(items), "items with spaces");
  EXPECT_EQ(rt.thread_label(events[0].tid), "env of the round trip");
}

TEST(RawTrace, ReaderRejectsMalformedInput) {
  {
    std::istringstream is("not a trace\n");
    EXPECT_THROW(obs::read_raw_trace(is), std::runtime_error);
  }
  {
    std::istringstream is("rdp-trace 1\nevent 0 0 250 0 0 0\n");  // bad kind
    EXPECT_THROW(obs::read_raw_trace(is), std::runtime_error);
  }
  {
    std::istringstream is("rdp-trace 1\nbogus record\n");
    EXPECT_THROW(obs::read_raw_trace(is), std::runtime_error);
  }
  {
    std::istringstream is("rdp-trace 1\nevent 0 0\n");  // short record
    EXPECT_THROW(obs::read_raw_trace(is), std::runtime_error);
  }
}

// --------------------------------------------- end to end ----

// A real fork-join execution through tracer -> analyzer: 8 tasks spawned
// from the environment, joined with task_group::wait. Checks structural
// invariants rather than exact times.
TEST(AnalyzeEndToEnd, RealForkJoinCapture) {
  auto& t = obs::tracer::instance();
  forkjoin::worker_pool pool(2);
  t.start();
  t.begin_phase("e2e");
  std::atomic<int> ran{0};
  {
    forkjoin::task_group g(pool);
    for (int i = 0; i < 8; ++i)
      g.spawn([&ran] {
        const auto until =
            std::chrono::steady_clock::now() + std::chrono::microseconds(200);
        while (std::chrono::steady_clock::now() < until) {
        }
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    g.wait();
  }
  t.stop();
  ASSERT_EQ(ran.load(), 8);

  const auto phases = obs::analyze_trace(
      t.collect(), [&t](std::uint16_t id) { return t.name(id); });
  ASSERT_EQ(phases.size(), 1u);
  const obs::phase_metrics& p = phases[0];
  EXPECT_EQ(p.phase, "e2e");
  EXPECT_EQ(p.tasks, 8u);
  EXPECT_EQ(p.unmatched, 0u);
  EXPECT_GT(p.work_ms, 0.0);
  EXPECT_GT(p.span_ms, 0.0);
  EXPECT_LE(p.span_ms, p.work_ms + 1e-9);
  EXPECT_GE(p.parallelism(), 1.0 - 1e-9);
  EXPECT_GE(p.threads, 1u);
  // All busy time is inside the 8 tasks, so work == sum of busy.
  EXPECT_NEAR(p.busy_ms, p.work_ms, 1e-6);
}

}  // namespace
