// Graph-reuse and batch-server coverage: a prepared_graph executed
// back-to-back must stay bit-identical to fresh-build runs for every
// benchmark; a re-armed dataflow_session must do the same; and the server
// must preserve those guarantees under admission control, batching, and
// concurrent submission. Runs under the TSan/UBSan presets (LABELS runtime).
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dp/dp.hpp"
#include "dp/spec/specs.hpp"
#include "exec/backend.hpp"
#include "exec/prepared_graph.hpp"
#include "forkjoin/worker_pool.hpp"
#include "obs/metrics.hpp"
#include "server/server.hpp"
#include "support/assertions.hpp"
#include "support/rng.hpp"

namespace {

using namespace rdp;
using namespace rdp::dp;

constexpr std::size_t k_n = 32, k_base = 8;

matrix<double> ge_input(std::uint64_t seed) {
  return make_diag_dominant(k_n, seed);
}

matrix<double> fw_input(std::uint64_t seed) {
  auto w = make_digraph(k_n, 0.3, seed, 1e9);
  // Integral weights: FW min/plus stays exact, so bit-comparison is fair.
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = static_cast<double>(static_cast<long long>(w.data()[i]));
  return w;
}

matrix<double> ge_expected(const matrix<double>& input) {
  auto m = input;
  ge_rdp_serial(m, k_base);
  return m;
}

matrix<double> fw_expected(const matrix<double>& input) {
  auto m = input;
  fw_rdp_serial(m, k_base);
  return m;
}

// ---- prepared_graph reuse -------------------------------------------------

TEST(PreparedGraph, FreezeShapeAndMatches) {
  matrix<double> m = ge_input(1);
  auto spec = make_ge_spec(m, k_base);
  const exec::prepared_graph g = exec::prepared_graph::freeze(*spec);
  EXPECT_EQ(g.spec_name(), std::string(spec->name()));
  EXPECT_EQ(g.size(), k_n);
  EXPECT_EQ(g.base(), k_base);
  EXPECT_FALSE(g.value_passing());
  EXPECT_GT(g.node_count(), 0u);
  EXPECT_GT(g.edge_count(), 0u);
  EXPECT_GE(g.root_count(), 1u);
  EXPECT_EQ(g.seed_slot_count(), 0u);
  EXPECT_TRUE(g.matches(*spec));

  matrix<double> other(k_n * 2, k_n * 2, 1.0);
  auto bigger = make_ge_spec(other, k_base);
  EXPECT_FALSE(g.matches(*bigger));
  auto coarser = make_ge_spec(m, k_base * 2);
  EXPECT_FALSE(g.matches(*coarser));
}

TEST(PreparedGraph, RejectsStructuralMismatch) {
  forkjoin::worker_pool pool(2);
  matrix<double> m = ge_input(2);
  auto spec = make_ge_spec(m, k_base);
  const exec::prepared_graph g = exec::prepared_graph::freeze(*spec);
  auto coarser = make_ge_spec(m, k_base * 2);
  EXPECT_THROW(g.execute(*coarser, pool), contract_error);
}

/// Back-to-back executions of ONE frozen graph over fresh data planes must
/// be bit-identical to fresh freeze+execute runs and to the serial backend.
TEST(PreparedGraph, GeReuseBitExact) {
  forkjoin::worker_pool pool(3);
  matrix<double> exemplar = ge_input(3);
  auto structural = make_ge_spec(exemplar, k_base);
  const exec::prepared_graph g = exec::prepared_graph::freeze(*structural);
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    const matrix<double> input = ge_input(seed);
    const matrix<double> expected = ge_expected(input);
    auto reused = input;
    auto spec = make_ge_spec(reused, k_base);
    g.execute(*spec, pool);
    EXPECT_EQ(reused, expected) << "reused graph diverged, seed=" << seed;

    auto fresh = input;
    auto fresh_spec = make_ge_spec(fresh, k_base);
    exec::prepared_graph::freeze(*fresh_spec).execute(*fresh_spec, pool);
    EXPECT_EQ(fresh, expected) << "fresh graph diverged, seed=" << seed;
  }
}

TEST(PreparedGraph, SwReuseBitExact) {
  forkjoin::worker_pool pool(3);
  const sw_params p;
  const std::string ea = make_dna(k_n, 1), eb = make_dna(k_n, 2);
  matrix<std::int32_t> scratch(k_n + 1, k_n + 1, 0);
  auto structural = make_sw_spec(scratch, ea, eb, p, k_base);
  const exec::prepared_graph g = exec::prepared_graph::freeze(*structural);
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    const std::string a = make_dna(k_n, seed), b = make_dna(k_n, seed + 100);
    matrix<std::int32_t> expected(k_n + 1, k_n + 1, 0);
    sw_rdp_serial(expected, a, b, p, k_base);
    matrix<std::int32_t> s(k_n + 1, k_n + 1, 0);
    auto spec = make_sw_spec(s, a, b, p, k_base);
    g.execute(*spec, pool);
    EXPECT_EQ(s, expected) << "reused SW graph diverged, seed=" << seed;
  }
}

/// FW is the value-passing spec: reuse also exercises the frozen seed
/// slots (environment-provided items) and the per-request value plane.
TEST(PreparedGraph, FwReuseBitExact) {
  forkjoin::worker_pool pool(3);
  matrix<double> exemplar = fw_input(4);
  auto structural = make_fw_spec(exemplar, k_base);
  const exec::prepared_graph g = exec::prepared_graph::freeze(*structural);
  EXPECT_TRUE(g.value_passing());
  for (std::uint64_t seed = 30; seed < 34; ++seed) {
    const matrix<double> input = fw_input(seed);
    const matrix<double> expected = fw_expected(input);
    auto m = input;
    auto spec = make_fw_spec(m, k_base);
    g.execute(*spec, pool);
    EXPECT_EQ(m, expected) << "reused FW graph diverged, seed=" << seed;
  }
}

/// Variable-arity fan-in through the frozen CSR: the Paren graph's widest
/// node carries 2(T-1) dependency slots, well past the executors' inline
/// buffers. Both freeze flavours (per-node and band-batched) must replay
/// bit-identically to the serial backend over fresh data planes.
TEST(PreparedGraph, ParenReuseBitExactIncludingBatched) {
  forkjoin::worker_pool pool(3);
  std::vector<double> exemplar_dims(k_n + 1, 2.0);
  matrix<double> scratch(k_n, k_n, 0.0);
  auto structural = make_paren_spec(scratch, exemplar_dims, k_base);
  const exec::prepared_graph g = exec::prepared_graph::freeze(*structural);
  const exec::prepared_graph gb =
      exec::prepared_graph::freeze_batched(*structural, pool.worker_count());
  EXPECT_EQ(g.size(), k_n);
  EXPECT_LT(gb.node_count(), g.node_count());
  for (std::uint64_t seed = 50; seed < 54; ++seed) {
    xoshiro256 gen(seed);
    std::vector<double> dims(k_n + 1);
    for (double& d : dims) d = static_cast<double>(1 + gen.next() % 50);
    matrix<double> expected(k_n, k_n, 0.0);
    paren_loop_serial(expected, dims);

    matrix<double> c(k_n, k_n, 0.0);
    auto spec = make_paren_spec(c, dims, k_base);
    g.execute(*spec, pool);
    EXPECT_EQ(c, expected) << "reused Paren graph diverged, seed=" << seed;

    matrix<double> cb(k_n, k_n, 0.0);
    auto spec_b = make_paren_spec(cb, dims, k_base);
    gb.execute(*spec_b, pool);
    EXPECT_EQ(cb, expected) << "batched Paren graph diverged, seed=" << seed;
  }
}

TEST(PreparedGraph, LcsReuseBitExact) {
  forkjoin::worker_pool pool(3);
  matrix<std::int32_t> scratch(k_n + 1, k_n + 1, 0);
  const std::string ea = make_dna(k_n, 5), eb = make_dna(k_n, 6);
  auto structural = make_lcs_spec(scratch, ea, eb, lcs_mode::lcs, k_base);
  const exec::prepared_graph g = exec::prepared_graph::freeze(*structural);
  for (std::uint64_t seed = 60; seed < 64; ++seed) {
    const std::string a = make_dna(k_n, seed), b = make_dna(k_n, seed + 7);
    matrix<std::int32_t> expected(k_n + 1, k_n + 1, 0);
    exec::run_serial(*make_lcs_spec(expected, a, b, lcs_mode::lcs, k_base));
    matrix<std::int32_t> t(k_n + 1, k_n + 1, 0);
    auto spec = make_lcs_spec(t, a, b, lcs_mode::lcs, k_base);
    g.execute(*spec, pool);
    EXPECT_EQ(t, expected) << "reused LCS graph diverged, seed=" << seed;
  }
}

/// Many executions of one graph racing on one pool: each binds its own data
/// plane, so concurrent requests must not interfere (TSan coverage).
TEST(PreparedGraph, ConcurrentExecutionsShareOneGraph) {
  forkjoin::worker_pool pool(4);
  matrix<double> exemplar = ge_input(5);
  auto structural = make_ge_spec(exemplar, k_base);
  const exec::prepared_graph g = exec::prepared_graph::freeze(*structural);

  constexpr std::size_t k_requests = 8;
  std::vector<matrix<double>> tables;
  std::vector<matrix<double>> expected;
  std::vector<std::unique_ptr<dp::recurrence>> specs;
  for (std::size_t i = 0; i < k_requests; ++i) {
    const matrix<double> input = ge_input(100 + i);
    expected.push_back(ge_expected(input));
    tables.push_back(input);
  }
  for (std::size_t i = 0; i < k_requests; ++i)
    specs.push_back(make_ge_spec(tables[i], k_base));

  std::vector<std::unique_ptr<exec::prepared_execution>> execs;
  for (std::size_t i = 0; i < k_requests; ++i)
    execs.push_back(
        std::make_unique<exec::prepared_execution>(g, *specs[i], pool));
  for (auto& e : execs) e->start();
  for (auto& e : execs) e->wait();
  for (std::size_t i = 0; i < k_requests; ++i) {
    EXPECT_EQ(execs[i]->nodes_executed(), g.node_count());
    EXPECT_EQ(tables[i], expected[i]) << "request " << i << " diverged";
  }
}

// ---- dataflow_session re-arm ----------------------------------------------

TEST(DataflowSession, ReuseBitExact) {
  matrix<double> exemplar = ge_input(6);
  auto structural = make_ge_spec(exemplar, k_base);
  exec::dataflow_options opts;
  opts.workers = 3;
  exec::dataflow_session session(*structural, opts);
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    const matrix<double> input = ge_input(seed);
    const matrix<double> expected = ge_expected(input);
    auto m = input;
    auto spec = make_ge_spec(m, k_base);
    const cnc_run_info info = session.execute(*spec);
    EXPECT_GT(info.stats.steps_executed, 0u);
    EXPECT_EQ(m, expected) << "re-armed session diverged, seed=" << seed;
  }
}

TEST(DataflowSession, RejectsStructuralMismatch) {
  matrix<double> exemplar = ge_input(7);
  auto structural = make_ge_spec(exemplar, k_base);
  exec::dataflow_options opts;
  opts.workers = 2;
  exec::dataflow_session session(*structural, opts);
  auto coarser = make_ge_spec(exemplar, k_base * 2);
  EXPECT_THROW(session.execute(*coarser), contract_error);
}

// ---- batch server ---------------------------------------------------------

/// One GE instance routed through the server; the table the caller handed
/// in must hold the serial result when the future resolves.
void check_server_ge(const server::server_config& cfg, std::size_t requests) {
  server::batch_server srv(cfg);
  matrix<double> exemplar = ge_input(8);
  auto structural = make_ge_spec(exemplar, k_base);
  const server::graph_id gid = srv.prepare(*structural);

  std::vector<std::shared_ptr<matrix<double>>> tables;
  std::vector<matrix<double>> expected;
  std::vector<std::future<server::response>> futs;
  for (std::size_t i = 0; i < requests; ++i) {
    const matrix<double> input = ge_input(200 + i);
    expected.push_back(ge_expected(input));
    tables.push_back(std::make_shared<matrix<double>>(input));
    // The spec must keep the table alive for the server: alias the spec's
    // shared ownership onto the table's.
    std::shared_ptr<dp::recurrence> spec(make_ge_spec(*tables[i], k_base));
    auto holder = std::make_shared<
        std::pair<std::shared_ptr<matrix<double>>, std::shared_ptr<dp::recurrence>>>(
        tables[i], std::move(spec));
    futs.push_back(srv.submit(
        gid, std::shared_ptr<dp::recurrence>(holder, holder->second.get())));
  }
  for (std::size_t i = 0; i < requests; ++i) {
    const server::response r = futs[i].get();
    ASSERT_EQ(r.status, server::request_status::ok)
        << to_string(r.status) << " " << r.error;
    EXPECT_GT(r.sojourn_ns, 0u);
    EXPECT_GE(r.sojourn_ns, r.exec_ns);
    EXPECT_EQ(*tables[i], expected[i]) << "request " << i << " diverged";
  }
}

TEST(BatchServer, PreparedModeBitExact) {
  server::server_config cfg;
  cfg.workers = 3;
  cfg.mode = server::exec_mode::prepared;
  check_server_ge(cfg, 8);
}

TEST(BatchServer, RearmModeBitExact) {
  server::server_config cfg;
  cfg.workers = 3;
  cfg.mode = server::exec_mode::rearm;
  check_server_ge(cfg, 6);
}

/// The server must carry the variable-arity graph end to end: prepare one
/// Paren shape, then stream requests with per-request chain dimensions.
TEST(BatchServer, ParenPreparedModeBitExact) {
  server::server_config cfg;
  cfg.workers = 3;
  cfg.mode = server::exec_mode::prepared;
  server::batch_server srv(cfg);

  std::vector<double> exemplar_dims(k_n + 1, 3.0);
  matrix<double> scratch(k_n, k_n, 0.0);
  auto structural = make_paren_spec(scratch, exemplar_dims, k_base);
  const server::graph_id gid = srv.prepare(*structural);

  struct request_state {
    std::vector<double> dims;
    matrix<double> table{k_n, k_n, 0.0};
    std::shared_ptr<dp::recurrence> spec;
  };
  constexpr std::size_t k_requests = 6;
  std::vector<std::shared_ptr<request_state>> states;
  std::vector<matrix<double>> expected;
  std::vector<std::future<server::response>> futs;
  for (std::size_t i = 0; i < k_requests; ++i) {
    auto st = std::make_shared<request_state>();
    xoshiro256 gen(300 + i);
    st->dims.resize(k_n + 1);
    for (double& d : st->dims) d = static_cast<double>(1 + gen.next() % 40);
    matrix<double> e(k_n, k_n, 0.0);
    paren_loop_serial(e, st->dims);
    expected.push_back(std::move(e));
    st->spec = make_paren_spec(st->table, st->dims, k_base);
    states.push_back(st);
    futs.push_back(srv.submit(
        gid, std::shared_ptr<dp::recurrence>(st, st->spec.get())));
  }
  for (std::size_t i = 0; i < k_requests; ++i) {
    const server::response r = futs[i].get();
    ASSERT_EQ(r.status, server::request_status::ok)
        << to_string(r.status) << " " << r.error;
    EXPECT_EQ(states[i]->table, expected[i]) << "request " << i;
  }
}

TEST(BatchServer, RebuildModeBitExact) {
  server::server_config cfg;
  cfg.workers = 3;
  cfg.mode = server::exec_mode::rebuild;
  cfg.max_inflight = 2;
  check_server_ge(cfg, 6);
}

TEST(BatchServer, PrepareIsIdempotentPerShape) {
  server::server_config cfg;
  cfg.workers = 2;
  server::batch_server srv(cfg);
  matrix<double> m = ge_input(9);
  auto spec1 = make_ge_spec(m, k_base);
  auto spec2 = make_ge_spec(m, k_base);
  const server::graph_id a = srv.prepare(*spec1);
  const server::graph_id b = srv.prepare(*spec2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(srv.graph_count(), 1u);
  auto coarser = make_ge_spec(m, k_base * 2);
  EXPECT_NE(srv.prepare(*coarser), a);
  EXPECT_EQ(srv.graph_count(), 2u);
}

TEST(BatchServer, SubmitRejectsMismatchedInstance) {
  server::server_config cfg;
  cfg.workers = 2;
  server::batch_server srv(cfg);
  matrix<double> m = ge_input(10);
  auto spec = make_ge_spec(m, k_base);
  const server::graph_id gid = srv.prepare(*spec);
  std::shared_ptr<dp::recurrence> coarser(make_ge_spec(m, k_base * 2));
  EXPECT_THROW((void)srv.submit(gid, coarser), contract_error);
  EXPECT_THROW((void)srv.submit(gid + 1, coarser), contract_error);
}

/// Admission control: a one-deep queue with one-at-a-time execution must
/// shed (not block, not fail) when the producer outruns the server.
TEST(BatchServer, ShedsWhenQueueIsFull) {
  server::server_config cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 1;
  cfg.max_inflight = 1;
  cfg.max_batch = 1;
  server::batch_server srv(cfg);
  matrix<double> exemplar = ge_input(11);
  auto structural = make_ge_spec(exemplar, k_base);
  const server::graph_id gid = srv.prepare(*structural);

  constexpr std::size_t k_requests = 24;
  std::vector<std::shared_ptr<matrix<double>>> tables;
  std::vector<std::future<server::response>> futs;
  for (std::size_t i = 0; i < k_requests; ++i) {
    tables.push_back(std::make_shared<matrix<double>>(ge_input(300 + i)));
    std::shared_ptr<dp::recurrence> spec(make_ge_spec(*tables[i], k_base));
    auto holder = std::make_shared<
        std::pair<std::shared_ptr<matrix<double>>, std::shared_ptr<dp::recurrence>>>(
        tables[i], std::move(spec));
    futs.push_back(srv.submit(
        gid, std::shared_ptr<dp::recurrence>(holder, holder->second.get())));
  }
  std::size_t ok = 0, shed = 0;
  for (auto& f : futs) {
    const server::response r = f.get();
    ASSERT_NE(r.status, server::request_status::failed) << r.error;
    if (r.status == server::request_status::ok)
      ++ok;
    else
      ++shed;
  }
  EXPECT_EQ(ok + shed, k_requests);
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u) << "burst of " << k_requests
                      << " never filled a 1-deep queue";
  EXPECT_EQ(srv.shed_count(), shed);
}

/// Multi-threaded submitters × multiple graph shapes × prepared mode:
/// the concurrent stress test the runtime sanitizer presets chew on.
TEST(BatchServer, ConcurrentSubmittersStress) {
  server::server_config cfg;
  cfg.workers = 4;
  cfg.max_inflight = 4;
  cfg.queue_capacity = 1024;  // no shedding: every result is checked
  server::batch_server srv(cfg);

  matrix<double> ge_ex = ge_input(12);
  auto ge_structural = make_ge_spec(ge_ex, k_base);
  const server::graph_id ge_gid = srv.prepare(*ge_structural);
  matrix<double> fw_ex = fw_input(13);
  auto fw_structural = make_fw_spec(fw_ex, k_base);
  const server::graph_id fw_gid = srv.prepare(*fw_structural);
  EXPECT_EQ(srv.graph_count(), 2u);

  constexpr std::size_t k_threads = 4, k_per_thread = 6;
  std::vector<std::thread> submitters;
  std::vector<std::string> failures(k_threads);
  for (std::size_t t = 0; t < k_threads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < k_per_thread; ++i) {
        const std::uint64_t seed = 1000 + t * 100 + i;
        const bool use_fw = (t + i) % 2 == 0;
        auto table = std::make_shared<matrix<double>>(
            use_fw ? fw_input(seed) : ge_input(seed));
        const matrix<double> expected =
            use_fw ? fw_expected(*table) : ge_expected(*table);
        std::shared_ptr<dp::recurrence> spec(
            use_fw ? make_fw_spec(*table, k_base)
                   : make_ge_spec(*table, k_base));
        auto holder = std::make_shared<std::pair<
            std::shared_ptr<matrix<double>>, std::shared_ptr<dp::recurrence>>>(
            table, std::move(spec));
        auto fut = srv.submit(
            use_fw ? fw_gid : ge_gid,
            std::shared_ptr<dp::recurrence>(holder, holder->second.get()));
        const server::response r = fut.get();
        if (r.status != server::request_status::ok) {
          failures[t] = "request failed: " + r.error;
          return;
        }
        if (*table != expected) {
          failures[t] = "table diverged at seed " + std::to_string(seed);
          return;
        }
      }
    });
  }
  for (auto& th : submitters) th.join();
  for (std::size_t t = 0; t < k_threads; ++t)
    EXPECT_TRUE(failures[t].empty()) << "thread " << t << ": " << failures[t];
}

/// Per-request metrics scoping: with scoped_metrics the response carries
/// the delta window of exactly this request's execution.
TEST(BatchServer, ScopedMetricsDeltaIsPerRequest) {
  server::server_config cfg;
  cfg.workers = 2;
  cfg.max_inflight = 1;
  cfg.scoped_metrics = true;
  server::batch_server srv(cfg);
  matrix<double> exemplar = ge_input(14);
  auto structural = make_ge_spec(exemplar, k_base);
  const server::graph_id gid = srv.prepare(*structural);

  for (int round = 0; round < 2; ++round) {
    auto table = std::make_shared<matrix<double>>(ge_input(500 + round));
    std::shared_ptr<dp::recurrence> spec(make_ge_spec(*table, k_base));
    auto holder = std::make_shared<
        std::pair<std::shared_ptr<matrix<double>>, std::shared_ptr<dp::recurrence>>>(
        table, std::move(spec));
    const server::response r =
        srv.submit(gid,
                   std::shared_ptr<dp::recurrence>(holder, holder->second.get()))
            .get();
    ASSERT_EQ(r.status, server::request_status::ok) << r.error;
    // The window must contain this request's prepared execution — exactly
    // one, every round (a lifetime aggregate would keep growing).
    bool found = false;
    for (const obs::metric_sample& s : r.metrics_delta) {
      if (s.name == "prepared.executions") {
        found = true;
        EXPECT_EQ(s.value, 1u) << "round " << round;
      }
    }
    EXPECT_TRUE(found) << "round " << round
                       << ": no prepared.executions in the delta window";
  }
}

TEST(BatchServer, ScopedMetricsRequiresSerialInflight) {
  server::server_config cfg;
  cfg.scoped_metrics = true;
  cfg.max_inflight = 2;
  EXPECT_THROW(server::batch_server srv(cfg), contract_error);
}

}  // namespace
