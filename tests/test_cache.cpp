// Tests for the cache simulator: LRU/set-associativity semantics, hierarchy
// behaviour, page randomisation, prefetcher, and kernel-trace replays.
#include <gtest/gtest.h>

#include "cache/cache_sim.hpp"
#include "cache/kernel_traces.hpp"
#include "cache/profiles.hpp"

namespace {

using namespace rdp::cache;

cache_config tiny(std::uint32_t assoc = 2, std::uint64_t size = 512) {
  return cache_config{"T", size, 64, assoc};  // size/64/assoc sets
}

TEST(CacheSim, ColdMissThenHit) {
  cache_sim c(tiny());
  EXPECT_FALSE(c.access_line(10));
  EXPECT_TRUE(c.access_line(10));
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(CacheSim, LruEvictionWithinSet) {
  // 2-way, 4 sets: lines 0, 4, 8 all map to set 0.
  cache_sim c(tiny(2, 512));
  EXPECT_EQ(c.config().sets(), 4u);
  c.access_line(0);
  c.access_line(4);
  c.access_line(0);                // refresh 0 -> LRU victim is 4
  c.access_line(8);                // evicts 4
  EXPECT_TRUE(c.access_line(8));   // still resident
  EXPECT_TRUE(c.access_line(0));   // still resident
  EXPECT_FALSE(c.access_line(4));  // was evicted
}

TEST(CacheSim, DifferentSetsDoNotConflict) {
  cache_sim c(tiny(1, 256));  // direct-mapped, 4 sets
  c.access_line(0);
  c.access_line(1);
  c.access_line(2);
  c.access_line(3);
  EXPECT_TRUE(c.access_line(0));
  EXPECT_TRUE(c.access_line(3));
  EXPECT_EQ(c.misses(), 4u);
}

TEST(CacheSim, FullAssociativityIsPureLru) {
  cache_config cfg{"FA", 4 * 64, 64, 4};  // one set, 4 ways
  cache_sim c(cfg);
  for (std::uint64_t l = 0; l < 4; ++l) c.access_line(l);
  c.access_line(9);                  // evicts line 0 (LRU)
  EXPECT_FALSE(c.access_line(0));
  EXPECT_TRUE(c.access_line(9));
}

TEST(CacheSim, FlushInvalidatesEverything) {
  cache_sim c(tiny());
  c.access_line(1);
  c.flush();
  EXPECT_FALSE(c.access_line(1));
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(cache_sim(cache_config{"bad", 100, 64, 3}),
               rdp::contract_error);
}

TEST(HierarchySim, MissesPropagateDownLevels) {
  hierarchy_config cfg;
  cfg.levels = {cache_config{"L1", 1024, 64, 2},
                cache_config{"L2", 8192, 64, 4}};
  cfg.page_randomization = false;
  hierarchy_sim h(cfg);
  h.access(0, 8);
  auto c = h.counters();
  EXPECT_EQ(c.misses[0], 1u);
  EXPECT_EQ(c.misses[1], 1u);
  h.access(0, 8);  // L1 hit: L2 not even probed
  c = h.counters();
  EXPECT_EQ(c.misses[0], 1u);
  EXPECT_EQ(c.accesses[1], 1u);
}

TEST(HierarchySim, CapacityRegimesMatchWorkingSet) {
  // Working set of 32 lines: fits L2 (128 lines) but not L1 (16 lines).
  hierarchy_config cfg;
  cfg.levels = {cache_config{"L1", 16 * 64, 64, 4},
                cache_config{"L2", 128 * 64, 64, 8}};
  cfg.page_randomization = false;
  hierarchy_sim h(cfg);
  for (int pass = 0; pass < 4; ++pass)
    for (std::uint64_t l = 0; l < 32; ++l) h.access(l * 64, 8);
  const auto c = h.counters();
  EXPECT_EQ(c.misses[1], 32u);            // L2: compulsory only
  EXPECT_EQ(c.misses[0], 4u * 32u);       // L1: thrashes every pass
}

TEST(HierarchySim, StraddlingAccessTouchesTwoLines) {
  hierarchy_config cfg;
  cfg.levels = {cache_config{"L1", 1024, 64, 2}};
  cfg.page_randomization = false;
  hierarchy_sim h(cfg);
  h.access(60, 8);  // crosses the line boundary at 64
  EXPECT_EQ(h.counters().misses[0], 2u);
}

TEST(HierarchySim, PageRandomizationBreaksLargeStrideConflicts) {
  // Note this only matters for caches whose index span exceeds the page
  // size (L2/L3); an L1 whose span equals the page (32K/8-way) is indexed
  // entirely by page-offset bits and randomisation is a no-op — exactly as
  // on real hardware.
  auto run = [](bool randomize) {
    hierarchy_config cfg;
    cfg.levels = {cache_config{"L2", 1024 * 1024, 64, 16}};
    cfg.page_randomization = randomize;
    hierarchy_sim h(cfg);
    // Pathological stride: 64 KiB apart -> one set without randomisation
    // (index span of this cache is 64 KiB).
    for (int pass = 0; pass < 3; ++pass)
      for (std::uint64_t r = 0; r < 64; ++r) h.access(r * 65536, 8);
    return h.counters().misses[0];
  };
  // Virtually indexed: 64 conflicting lines thrash 16 ways every pass.
  const auto virt = run(false);
  // Page-randomised (physical) indexing spreads them across sets.
  const auto phys = run(true);
  EXPECT_GT(virt, phys);
  EXPECT_EQ(phys, 64u);        // compulsory only
  EXPECT_EQ(run(true), phys);  // deterministic hash
}

TEST(HierarchySim, NextLinePrefetchReducesStreamMisses) {
  auto run = [](bool prefetch) {
    hierarchy_config cfg;
    cfg.levels = {cache_config{"L1", 1024, 64, 2},
                  cache_config{"L2", 64 * 1024, 64, 8}};
    cfg.page_randomization = false;
    cfg.next_line_prefetch = prefetch;
    hierarchy_sim h(cfg);
    for (std::uint64_t b = 0; b < 32768; b += 8) h.access(b, 8);
    return h.counters().misses[1];
  };
  EXPECT_LT(run(true), run(false) / 2 + 1);
}

// ------------------------------ kernel replays -----------------------------

TEST(KernelTraces, GeTaskFitsInLargeCache) {
  // One 32x32 D-task footprint = 3 blocks + pivot col: all compulsory in a
  // large cache, so misses == distinct lines touched.
  hierarchy_config cfg;
  cfg.levels = {cache_config{"L", 8ull << 20, 64, 16}};
  cfg.page_randomization = false;
  hierarchy_sim h(cfg);
  replay_ge_task(h, /*n=*/256, /*b=*/32, /*ti=*/4, /*tj=*/5, /*tk=*/2);
  const auto misses = h.counters().misses[0];
  // X, U, V blocks: 32 rows x ceil(32/8)=4 lines = 128 lines each; the
  // pivot column adds <= 32 and the diagonal <= 32 more.
  EXPECT_GE(misses, 3u * 128u);
  EXPECT_LE(misses, 3u * 128u + 64u);
}

TEST(KernelTraces, GeSmallCacheThrashesTowardsBound) {
  hierarchy_config cfg;
  cfg.levels = {cache_config{"L", 4096, 64, 4}};  // 64 lines only
  cfg.page_randomization = false;
  hierarchy_sim h1(cfg), h2(cfg);
  replay_ge_task(h1, 256, 32, 4, 5, 2);
  replay_ge_task(h2, 256, 32, 4, 5, 2);  // identical replay: deterministic
  EXPECT_EQ(h1.counters().misses[0], h2.counters().misses[0]);
  // Far more misses than the compulsory floor.
  EXPECT_GT(h1.counters().misses[0], 3u * 128u * 4u);
}

TEST(KernelTraces, ATaskTouchesFewerLinesThanDTask) {
  hierarchy_config cfg;
  cfg.levels = {cache_config{"L", 8ull << 20, 64, 16}};
  cfg.page_randomization = false;
  hierarchy_sim ha(cfg), hd(cfg);
  replay_ge_task(ha, 256, 32, 2, 2, 2);  // A-kind: triangular
  replay_ge_task(hd, 256, 32, 4, 5, 2);  // D-kind: full
  EXPECT_LT(ha.counters().misses[0], hd.counters().misses[0]);
}

TEST(KernelTraces, FwAndSwReplaysRun) {
  hierarchy_sim h(skylake_hierarchy());
  replay_fw_task(h, 128, 16, 1, 2, 3);
  replay_sw_task(h, 128, 16, 3, 2);
  const auto c = h.counters();
  EXPECT_GT(c.accesses[0], 0u);
  EXPECT_GT(c.misses[0], 0u);
}

// The sampled-replay estimator must agree with full replays on tiles it
// can cross-check (the header's "validated against full replays" promise).
TEST(KernelTraces, SampledEstimateTracksExactReplay) {
  hierarchy_sim h(skylake_hierarchy());
  for (std::size_t b : {64ull, 128ull, 256ull}) {
    const std::size_t n = 4 * b;
    const auto exact = estimate_ge_task_misses(h, n, b, 3, 2, 1,
                                               /*exact_threshold=*/4096);
    const auto sampled = estimate_ge_task_misses(h, n, b, 3, 2, 1,
                                                 /*exact_threshold=*/1);
    ASSERT_FALSE(exact.sampled);
    ASSERT_TRUE(sampled.sampled);
    for (std::size_t lvl = 0; lvl < exact.misses.size(); ++lvl) {
      const double e = static_cast<double>(exact.misses[lvl]);
      const double s = static_cast<double>(sampled.misses[lvl]);
      // Within 35% at every level is plenty for the order-of-magnitude
      // ratios of Table I (the cliffs span 1-2 decades).
      EXPECT_NEAR(s, e, 0.35 * e + 8.0) << "b=" << b << " level=" << lvl;
    }
  }
}

TEST(KernelTraces, EstimateIsDeterministic) {
  hierarchy_sim h(skylake_hierarchy());
  const auto a = estimate_ge_task_misses(h, 2048, 512, 1, 2, 0);
  const auto b = estimate_ge_task_misses(h, 2048, 512, 1, 2, 0);
  EXPECT_EQ(a.misses, b.misses);
}

// Parameterised LRU property sweep: for any geometry, a working set that
// fits sees only compulsory misses on re-traversal; one that exceeds the
// capacity with a cyclic access pattern misses every time (LRU's
// worst case).
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint32_t /*assoc*/,
                                                 std::uint64_t /*lines*/>> {};

TEST_P(CacheGeometry, FittingWorkingSetHasCompulsoryMissesOnly) {
  const auto [assoc, lines] = GetParam();
  cache_sim c(cache_config{"t", lines * 64, 64, assoc});
  const std::uint64_t sets = c.config().sets();
  // One line per set, half the ways: always fits.
  const std::uint64_t ws = sets * (assoc / 2 + (assoc == 1 ? 1 : 0));
  for (int pass = 0; pass < 4; ++pass)
    for (std::uint64_t l = 0; l < ws; ++l) c.access_line(l);
  EXPECT_EQ(c.misses(), ws);
}

TEST_P(CacheGeometry, CyclicOverCapacityThrashes) {
  const auto [assoc, lines] = GetParam();
  cache_sim c(cache_config{"t", lines * 64, 64, assoc});
  const std::uint64_t ws = lines * 2;  // 2x capacity, cyclic
  c.reset_counters();
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t l = 0; l < ws; ++l) c.access_line(l);
  EXPECT_EQ(c.misses(), 3 * ws);  // LRU + cyclic = zero reuse
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values<std::uint32_t>(1, 2, 4, 8, 16),
                       ::testing::Values<std::uint64_t>(16, 64, 512)));

TEST(Profiles, GeometriesAreValid) {
  hierarchy_sim sky(skylake_hierarchy());
  hierarchy_sim epyc(epyc_hierarchy());
  EXPECT_EQ(sky.level_count(), 3u);
  EXPECT_EQ(epyc.level_count(), 3u);
  EXPECT_EQ(sky.level(1).config().size_bytes, 1024u * 1024);
  EXPECT_EQ(epyc.level(1).config().size_bytes, 512u * 1024);
}

}  // namespace
