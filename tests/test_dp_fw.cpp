// Correctness of Floyd-Warshall APSP across all execution models.
//
// Workloads use integer edge weights (exact double arithmetic) and a finite
// big-M for missing edges, so every correct schedule converges to exactly
// the same fixpoint — tests use exact equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "dp/fw.hpp"
#include "support/rng.hpp"

namespace {

using namespace rdp;
using namespace rdp::dp;

constexpr double kInf = 1.0e9;  // finite big-M keeps min-plus sums exact

matrix<double> input(std::size_t n, std::uint64_t seed = 42) {
  auto w = make_digraph(n, 0.25, seed, kInf);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      w(i, j) = std::floor(w(i, j));  // integer weights -> exact arithmetic
  return w;
}

// Independent oracle: min-plus matrix closure by repeated squaring.
matrix<double> minplus_closure(const matrix<double>& w) {
  const std::size_t n = w.rows();
  auto d = w;
  for (std::size_t len = 1; len < n; len *= 2) {
    matrix<double> next(n, n, 2 * kInf);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < n; ++k) {
        const double dik = d(i, k);
        if (dik >= 2 * kInf) continue;
        for (std::size_t j = 0; j < n; ++j)
          next(i, j) = std::min(next(i, j), dik + d(k, j));
      }
    d = std::move(next);
  }
  return d;
}

TEST(FwOracle, LoopSerialMatchesMinPlusClosureOnReachablePairs) {
  const std::size_t n = 32;
  auto w = input(n);
  auto fw = w;
  fw_loop_serial(fw);
  auto closure = minplus_closure(w);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (closure(i, j) < kInf) {
        EXPECT_DOUBLE_EQ(fw(i, j), closure(i, j)) << i << "," << j;
      } else {
        EXPECT_GE(fw(i, j), kInf * 0.5) << i << "," << j;
      }
    }
}

TEST(FwLoop, DiagonalStaysZeroAndTriangleInequalityHolds) {
  auto w = input(64, 3);
  fw_loop_serial(w);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(w(i, i), 0.0);
  xoshiro256 rng(9);
  for (int s = 0; s < 2000; ++s) {
    const auto i = rng.below(64), j = rng.below(64), k = rng.below(64);
    EXPECT_LE(w(i, j), w(i, k) + w(k, j) + 1e-9);
  }
}

class FwRdpSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(FwRdpSweep, SerialRecursionEqualsLoop) {
  const auto [n, base] = GetParam();
  auto oracle = input(n);
  auto c = oracle;
  fw_loop_serial(oracle);
  fw_rdp_serial(c, base);
  EXPECT_TRUE(oracle == c) << "n=" << n << " base=" << base;
}

TEST_P(FwRdpSweep, ForkJoinEqualsLoop) {
  const auto [n, base] = GetParam();
  auto oracle = input(n);
  auto c = oracle;
  fw_loop_serial(oracle);
  forkjoin::worker_pool pool(4);
  fw_rdp_forkjoin(c, base, pool);
  EXPECT_TRUE(oracle == c) << "n=" << n << " base=" << base;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBases, FwRdpSweep,
    ::testing::Values(std::tuple{16, 4}, std::tuple{16, 8}, std::tuple{16, 16},
                      std::tuple{32, 4}, std::tuple{32, 8},
                      std::tuple{32, 16}, std::tuple{64, 8},
                      std::tuple{64, 16}, std::tuple{64, 32},
                      std::tuple{64, 64}, std::tuple{128, 32}));

TEST(FwRdp, RejectsBadShapes) {
  matrix<double> c(48, 48, 1.0);
  EXPECT_THROW(fw_rdp_serial(c, 8), contract_error);
  matrix<double> c2(64, 64, 1.0);
  EXPECT_THROW(fw_rdp_serial(c2, 12), contract_error);
}

// ----------------------------------------------------------- data-flow ----

class FwCncSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, cnc_variant>> {};

TEST_P(FwCncSweep, CncEqualsLoop) {
  const auto [n, base, variant] = GetParam();
  auto oracle = input(n);
  auto c = oracle;
  fw_loop_serial(oracle);
  const auto info = fw_cnc(c, base, variant, 4);
  EXPECT_TRUE(oracle == c)
      << "n=" << n << " base=" << base << " variant=" << to_string(variant);

  // Every (I,J,K) base task runs exactly once and puts one tile item;
  // the environment seeds T^2 more.
  const std::uint64_t t = n / base;
  EXPECT_EQ(info.stats.items_put, t * t * t + t * t);
  if (variant != cnc_variant::native) {
    EXPECT_EQ(info.stats.gets_failed, 0u);
    EXPECT_EQ(info.stats.steps_aborted, 0u);
  }
  if (variant == cnc_variant::manual)
    EXPECT_EQ(info.stats.steps_prescribed, t * t * t);
}

INSTANTIATE_TEST_SUITE_P(
    SizesBasesVariants, FwCncSweep,
    ::testing::Combine(::testing::Values<std::size_t>(16, 32, 64),
                       ::testing::Values<std::size_t>(4, 8, 16),
                       ::testing::Values(cnc_variant::native,
                                         cnc_variant::tuner,
                                         cnc_variant::manual,
                                         cnc_variant::nonblocking)));

TEST(FwCnc, SingleTileProblem) {
  auto oracle = input(8);
  auto c = oracle;
  fw_loop_serial(oracle);
  const auto info = fw_cnc(c, 8, cnc_variant::native, 2);
  EXPECT_TRUE(oracle == c);
  EXPECT_EQ(info.stats.items_put, 2u);  // the seed tile + its round-0 update
}

TEST(FwCnc, DisconnectedGraphKeepsUnreachablePairsLarge) {
  // Two halves with no cross edges: the block-diagonal structure must be
  // preserved by every variant.
  const std::size_t n = 32;
  matrix<double> w(n, n, kInf);
  xoshiro256 rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    w(i, i) = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const bool same_half = (i < n / 2) == (j < n / 2);
      if (i != j && same_half && rng.uniform() < 0.6)
        w(i, j) = std::floor(rng.uniform(1.0, 50.0));
    }
  }
  auto c = w;
  fw_cnc(c, 8, cnc_variant::tuner, 4);
  for (std::size_t i = 0; i < n / 2; ++i)
    for (std::size_t j = n / 2; j < n; ++j) {
      EXPECT_GE(c(i, j), kInf * 0.5);
      EXPECT_GE(c(j, i), kInf * 0.5);
    }
}

TEST(FwCnc, TunerVariantsCollectEveryTileItem) {
  // With get-count GC (tuner/manual), every value-passing tile item is
  // reclaimed by its last consumer: memory drops from O(n^2 T) to O(n^2).
  auto c = input(64);
  const auto tuner = fw_cnc(c, 8, cnc_variant::tuner, 4);
  EXPECT_EQ(tuner.items_live_at_end, 0u);

  auto c2 = input(64);
  const auto manual = fw_cnc(c2, 8, cnc_variant::manual, 4);
  EXPECT_EQ(manual.items_live_at_end, 0u);

  // Native (abort-and-re-execute) cannot use get counts: everything stays.
  auto c3 = input(64);
  const auto native = fw_cnc(c3, 8, cnc_variant::native, 4);
  const std::uint64_t t = 64 / 8;
  EXPECT_EQ(native.items_live_at_end, t * t * t + t * t);
}

TEST(FwCnc, AllVariantsAgreeOnLargerProblem) {
  auto oracle = input(64, 11);
  auto c_native = oracle, c_tuner = oracle, c_manual = oracle;
  fw_loop_serial(oracle);
  fw_cnc(c_native, 8, cnc_variant::native, 4);
  fw_cnc(c_tuner, 8, cnc_variant::tuner, 4);
  fw_cnc(c_manual, 8, cnc_variant::manual, 4);
  EXPECT_TRUE(oracle == c_native);
  EXPECT_TRUE(oracle == c_tuner);
  EXPECT_TRUE(oracle == c_manual);
}

}  // namespace
