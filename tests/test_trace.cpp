// Tests for the task-DAG builders and the work/span analysis — including
// the paper's central structural claim: fork-join joins inflate the span
// (artificial dependencies), data-flow DAGs do not.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "trace/builders.hpp"
#include "trace/task_graph.hpp"

namespace {

using namespace rdp;
using namespace rdp::trace;

std::uint64_t ge_task_count(std::uint64_t t) {
  return (2 * t * t * t + 3 * t * t + t) / 6;
}

TEST(TaskGraph, TopologicalOrderAndValidation) {
  task_graph g;
  const auto a = g.add_node(node_type::base_task, dp::task_kind::A, {}, 5);
  const auto b = g.add_node(node_type::base_task, dp::task_kind::B, {}, 3);
  const auto c = g.add_node(node_type::base_task, dp::task_kind::C, {}, 3);
  const auto d = g.add_node(node_type::base_task, dp::task_kind::D, {}, 7);
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.validate();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), a);
  EXPECT_EQ(order.back(), d);
  const auto ws = analyze_work_span(g);
  EXPECT_DOUBLE_EQ(ws.total_work, 18.0);
  EXPECT_DOUBLE_EQ(ws.span, 15.0);  // a -> b/c -> d = 5+3+7
}

TEST(TaskGraph, CycleDetection) {
  task_graph g;
  const auto a = g.add_node(node_type::base_task);
  const auto b = g.add_node(node_type::base_task);
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(g.topological_order(), contract_error);
}

TEST(TaskWork, GeWorkSumsToLoopNestSize) {
  // Σ over all base tasks of their update counts must equal the loop nest:
  // Σ_{k<n} (n-1-k)^2 = (n-1)n(2n-1)/6 — independent of the base size.
  const std::uint64_t n = 256;
  const std::uint64_t loop_total = (n - 1) * n * (2 * n - 1) / 6;
  for (std::uint64_t base : {8ull, 16ull, 32ull, 64ull, 256ull}) {
    const auto g = build_ge_dataflow(n / base, base);
    std::uint64_t total = 0;
    for (const auto& node : g.nodes()) total += node.work;
    EXPECT_EQ(total, loop_total) << "base=" << base;
  }
}

TEST(TaskWork, FwWorkSumsToCube) {
  const std::uint64_t n = 128;
  for (std::uint64_t base : {8ull, 32ull}) {
    const auto g = build_fw_dataflow(n / base, base);
    std::uint64_t total = 0;
    for (const auto& node : g.nodes()) total += node.work;
    EXPECT_EQ(total, n * n * n) << "base=" << base;
  }
}

class BuilderSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BuilderSweep, GeDataflowShape) {
  const std::size_t t = GetParam();
  const auto g = build_ge_dataflow(t, 16);
  g.validate();
  EXPECT_EQ(g.node_count(), ge_task_count(t));
  EXPECT_EQ(g.base_task_count(), ge_task_count(t));
}

TEST_P(BuilderSweep, GeForkjoinCoversSameBaseTasks) {
  const std::size_t t = GetParam();
  const auto g = build_ge_forkjoin(t, 16);
  g.validate();
  EXPECT_EQ(g.base_task_count(), ge_task_count(t));
  // Fork-join DAG carries the same total work as the data-flow DAG.
  const auto df = build_ge_dataflow(t, 16);
  EXPECT_DOUBLE_EQ(analyze_work_span(g).total_work,
                   analyze_work_span(df).total_work);
}

TEST_P(BuilderSweep, FwShapes) {
  const std::size_t t = GetParam();
  const auto df = build_fw_dataflow(t, 8);
  const auto fj = build_fw_forkjoin(t, 8);
  df.validate();
  fj.validate();
  EXPECT_EQ(df.base_task_count(), t * t * t);
  EXPECT_EQ(fj.base_task_count(), t * t * t);
}

TEST_P(BuilderSweep, SwShapes) {
  const std::size_t t = GetParam();
  const auto df = build_sw_dataflow(t, 8);
  const auto fj = build_sw_forkjoin(t, 8);
  df.validate();
  fj.validate();
  EXPECT_EQ(df.base_task_count(), t * t);
  EXPECT_EQ(fj.base_task_count(), t * t);
}

INSTANTIATE_TEST_SUITE_P(TileCounts, BuilderSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

// ------------------- the paper's span claims (§III-B) ---------------------

TEST(SpanClaims, SwDataflowSpanIsWavefront) {
  // Data-flow SW: critical path = 2T-1 tiles of b^2 work each.
  for (std::size_t t : {4ull, 16ull, 64ull}) {
    const auto g = build_sw_dataflow(t, 8);
    const auto ws = analyze_work_span(g);
    EXPECT_DOUBLE_EQ(ws.span, static_cast<double>((2 * t - 1) * 64));
  }
}

TEST(SpanClaims, SwForkjoinSpanIsPowerLog3) {
  // Fork-join SW: R(X) = R00; {R01 ∥ R10}; R11 gives span(T) = 3·span(T/2)
  // => exactly 3^log2(T) base tasks on the critical path.
  for (std::size_t t : {4ull, 16ull, 64ull}) {
    const auto g = build_sw_forkjoin(t, 8);
    const auto ws = analyze_work_span(g);
    const double expected =
        std::pow(3.0, std::log2(static_cast<double>(t))) * 64.0;
    EXPECT_DOUBLE_EQ(ws.span, expected) << "t=" << t;
  }
}

TEST(SpanClaims, ForkJoinSpanStrictlyWorseThanDataflow) {
  // The artificial dependencies must show up as a strictly longer critical
  // path for every benchmark once there are enough tiles.
  for (std::size_t t : {8ull, 16ull, 32ull}) {
    const auto sw_gap = analyze_work_span(build_sw_forkjoin(t, 8)).span /
                        analyze_work_span(build_sw_dataflow(t, 8)).span;
    EXPECT_GT(sw_gap, 1.0) << "t=" << t;
    const auto ge_gap = analyze_work_span(build_ge_forkjoin(t, 8)).span /
                        analyze_work_span(build_ge_dataflow(t, 8)).span;
    EXPECT_GT(ge_gap, 1.0) << "t=" << t;
    const auto fw_gap = analyze_work_span(build_fw_forkjoin(t, 8)).span /
                        analyze_work_span(build_fw_dataflow(t, 8)).span;
    EXPECT_GT(fw_gap, 1.0) << "t=" << t;
  }
}

TEST(SpanClaims, SwForkjoinGapGrowsWithProblemSize) {
  // span ratio ~ T^(log2 3 - 1): increasing — the asymptotic separation.
  double prev = 0;
  for (std::size_t t : {4ull, 8ull, 16ull, 32ull, 64ull}) {
    const double gap = analyze_work_span(build_sw_forkjoin(t, 8)).span /
                       analyze_work_span(build_sw_dataflow(t, 8)).span;
    EXPECT_GT(gap, prev);
    prev = gap;
  }
}

TEST(SpanClaims, GeDataflowParallelismGrowsQuadratically) {
  // GE data-flow average parallelism is Θ(T²)·work-weighted; just assert
  // substantial growth between T=8 and T=32.
  const auto p8 = analyze_work_span(build_ge_dataflow(8, 8)).parallelism();
  const auto p32 = analyze_work_span(build_ge_dataflow(32, 8)).parallelism();
  EXPECT_GT(p32, 4 * p8);
}

TEST(DotExport, RendersSmallGraph) {
  const auto g = build_sw_dataflow(2, 4);
  std::ostringstream os;
  g.write_dot(os, "sw2");
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(DotExport, RefusesHugeGraph) {
  const auto g = build_fw_dataflow(32, 8);  // 32768 nodes
  std::ostringstream os;
  EXPECT_THROW(g.write_dot(os, "big"), contract_error);
}

// ----------------------- r-way fork-join builder ---------------------------

TEST(RwayBuilder, CoversTheSameBaseTasksAsTwoWay) {
  for (std::size_t t : {4ull, 16ull, 64ull}) {
    const auto g = build_ge_forkjoin_rway(t, 16, 4);
    g.validate();
    EXPECT_EQ(g.base_task_count(), ge_task_count(t)) << "t=" << t;
    // Work conservation across branching factors.
    EXPECT_DOUBLE_EQ(analyze_work_span(g).total_work,
                     analyze_work_span(build_ge_dataflow(t, 16)).total_work);
  }
}

TEST(RwayBuilder, TwoWayMatchesDedicatedBuilderSpan) {
  for (std::size_t t : {8ull, 32ull}) {
    const auto rway = analyze_work_span(build_ge_forkjoin_rway(t, 32, 2));
    const auto classic = analyze_work_span(build_ge_forkjoin(t, 32));
    EXPECT_DOUBLE_EQ(rway.span, classic.span) << "t=" << t;
    EXPECT_DOUBLE_EQ(rway.total_work, classic.total_work);
  }
}

TEST(RwayBuilder, SpanDecreasesMonotonicallyInR) {
  const std::size_t t = 64;
  double prev = 1e300;
  for (std::size_t r : {2ull, 4ull, 8ull, 64ull}) {
    const auto ws = analyze_work_span(build_ge_forkjoin_rway(t, 16, r));
    EXPECT_LT(ws.span, prev) << "r=" << r;
    prev = ws.span;
  }
  // Full-width recursion (r == tiles) reaches the data-flow span exactly.
  EXPECT_DOUBLE_EQ(prev, analyze_work_span(build_ge_dataflow(t, 16)).span);
}

TEST(RwayBuilder, RejectsNonConformingTileCounts) {
  EXPECT_THROW(build_ge_forkjoin_rway(24, 16, 4), contract_error);
  EXPECT_THROW(build_ge_forkjoin_rway(16, 16, 1), contract_error);
}

// Single-tile edge cases: every builder must produce exactly one task.
TEST(Builders, SingleTileGraphs) {
  EXPECT_EQ(build_ge_dataflow(1, 8).node_count(), 1u);
  EXPECT_EQ(build_ge_forkjoin(1, 8).node_count(), 1u);
  EXPECT_EQ(build_fw_dataflow(1, 8).node_count(), 1u);
  EXPECT_EQ(build_fw_forkjoin(1, 8).node_count(), 1u);
  EXPECT_EQ(build_sw_dataflow(1, 8).node_count(), 1u);
  EXPECT_EQ(build_sw_forkjoin(1, 8).node_count(), 1u);
}

}  // namespace
