// Tests for the fork-join runtime: worker pool scheduling, task_group
// fork/join semantics, nested recursion, exception propagation, helping
// joins, and parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "forkjoin/task_group.hpp"
#include "forkjoin/worker_pool.hpp"

namespace {

using namespace rdp::forkjoin;

TEST(WorkerPool, RunExecutesRootTask) {
  worker_pool pool(2);
  std::atomic<int> x{0};
  pool.run([&] { x.store(42); });
  EXPECT_EQ(x.load(), 42);
}

TEST(WorkerPool, SingleWorkerStillCompletes) {
  worker_pool pool(1);
  std::atomic<int> sum{0};
  pool.run([&] {
    task_group g(pool);
    for (int i = 1; i <= 100; ++i)
      g.spawn([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
    g.wait();
  });
  EXPECT_EQ(sum.load(), 5050);
}

TEST(WorkerPool, CurrentIsNullOnExternalThread) {
  worker_pool pool(2);
  EXPECT_EQ(worker_pool::current(), nullptr);
  EXPECT_EQ(worker_pool::current_worker_index(), -1);
  // Tasks may run on pool workers (current()==&pool, index in range) or on
  // the external thread helping inside run()/wait() (current()==nullptr).
  std::atomic<bool> bad{false};
  pool.run([&] {
    task_group g(pool);
    for (int i = 0; i < 64; ++i)
      g.spawn([&] {
        worker_pool* p = worker_pool::current();
        const int idx = worker_pool::current_worker_index();
        const bool on_worker = p == &pool && idx >= 0 &&
                               idx < static_cast<int>(pool.worker_count());
        const bool on_helper = p == nullptr && idx == -1;
        if (!on_worker && !on_helper) bad.store(true);
      });
    g.wait();
  });
  EXPECT_FALSE(bad.load());
}

TEST(WorkerPool, StatsCountExecutedTasks) {
  worker_pool pool(2);
  pool.reset_stats();
  pool.run([&] {
    task_group g(pool);
    for (int i = 0; i < 50; ++i) g.spawn([] {});
    g.wait();
  });
  const pool_stats s = pool.stats();
  // 50 spawned tasks + 1 root task.
  EXPECT_GE(s.tasks_spawned, 51u);
  EXPECT_GE(s.tasks_executed, 51u);
}

TEST(TaskGroup, WaitBlocksUntilAllChildrenFinish) {
  worker_pool pool(4);
  std::atomic<int> done{0};
  pool.run([&] {
    task_group g(pool);
    for (int i = 0; i < 200; ++i)
      g.spawn([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    g.wait();
    EXPECT_EQ(done.load(), 200);  // join semantics: all forks completed
  });
  EXPECT_EQ(done.load(), 200);
}

TEST(TaskGroup, RunInlineCountsTowardsWait) {
  worker_pool pool(2);
  int value = 0;
  pool.run([&] {
    task_group g(pool);
    g.run_inline([&] { value = 7; });
    g.wait();
  });
  EXPECT_EQ(value, 7);
}

// Classic nested fork-join: naive parallel Fibonacci. Exercises deep
// recursion, nested groups, and helping joins (the waiting worker must
// execute other tasks or a 2-worker pool would deadlock).
long fib_serial(int n) { return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2); }

long fib_parallel(worker_pool& pool, int n) {
  if (n < 2) return n;
  if (n < 12) return fib_serial(n);
  long a = 0, b = 0;
  task_group g(pool);
  g.spawn([&pool, &a, n] { a = fib_parallel(pool, n - 1); });
  b = fib_parallel(pool, n - 2);
  g.wait();
  return a + b;
}

TEST(TaskGroup, NestedForkJoinFibonacci) {
  worker_pool pool(4);
  long result = 0;
  pool.run([&] { result = fib_parallel(pool, 24); });
  EXPECT_EQ(result, fib_serial(24));
}

TEST(TaskGroup, ExceptionFromChildPropagatesToWait) {
  worker_pool pool(2);
  bool caught = false;
  pool.run([&] {
    task_group g(pool);
    g.spawn([] { throw std::runtime_error("child failed"); });
    for (int i = 0; i < 10; ++i) g.spawn([] {});
    try {
      g.wait();
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "child failed";
    }
  });
  EXPECT_TRUE(caught);
}

TEST(TaskGroup, AllSiblingsStillRunWhenOneThrows) {
  worker_pool pool(2);
  std::atomic<int> ran{0};
  pool.run([&] {
    task_group g(pool);
    for (int i = 0; i < 20; ++i)
      g.spawn([&ran, i] {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i == 3) throw std::runtime_error("boom");
      });
    try {
      g.wait();
    } catch (const std::runtime_error&) {
    }
  });
  EXPECT_EQ(ran.load(), 20);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  worker_pool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.run([&] {
    parallel_for(pool, 0, kN, 64,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  worker_pool pool(2);
  std::atomic<int> count{0};
  pool.run([&] {
    parallel_for(pool, 5, 5, 4, [&](std::size_t) { count.fetch_add(1); });
    parallel_for(pool, 0, 3, 64, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, RejectsZeroGrain) {
  worker_pool pool(1);
  bool threw = false;
  pool.run([&] {
    try {
      parallel_for(pool, 0, 10, 0, [](std::size_t) {});
    } catch (const rdp::contract_error&) {
      threw = true;
    }
  });
  EXPECT_TRUE(threw);
}

// Spawning from an external (non-worker) thread goes through the injection
// queue and must still be executed.
TEST(WorkerPool, ExternalEnqueueViaGroup) {
  worker_pool pool(2);
  std::atomic<int> x{0};
  task_group g(pool);  // group used from the main (external) thread
  for (int i = 0; i < 32; ++i) g.spawn([&x] { x.fetch_add(1); });
  g.wait();  // external wait helps via steal/injection paths
  EXPECT_EQ(x.load(), 32);
}

// Oversubscription: more workers than hardware threads must not deadlock.
TEST(WorkerPool, OversubscribedPoolCompletes) {
  worker_pool pool(8);
  std::atomic<long> sum{0};
  pool.run([&] {
    task_group g(pool);
    for (int i = 0; i < 1000; ++i)
      g.spawn([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
    g.wait();
  });
  EXPECT_EQ(sum.load(), 1000);
}

TEST(WorkerPool, EnqueueGlobalRunsTasks) {
  worker_pool pool(2);
  std::atomic<int> sum{0};
  for (int i = 0; i < 64; ++i)
    pool.enqueue_global(make_task(
        [&sum] { sum.fetch_add(1, std::memory_order_relaxed); }, nullptr));
  // Drain by helping from the external thread.
  while (sum.load(std::memory_order_acquire) < 64)
    if (!pool.try_run_one()) std::this_thread::yield();
  EXPECT_EQ(sum.load(), 64);
}

TEST(WorkerPool, AffinityTasksRunOnTheirWorker) {
  worker_pool pool(3);
  std::atomic<int> misplaced{0};
  std::atomic<int> done{0};
  constexpr int kN = 90;
  for (int i = 0; i < kN; ++i) {
    const unsigned target = static_cast<unsigned>(i) % 3;
    pool.enqueue_affine(target, make_task(
        [&misplaced, &done, target] {
          if (worker_pool::current_worker_index() !=
              static_cast<int>(target))
            misplaced.fetch_add(1, std::memory_order_relaxed);
          done.fetch_add(1, std::memory_order_relaxed);
        },
        nullptr));
  }
  while (done.load(std::memory_order_acquire) < kN) std::this_thread::yield();
  EXPECT_EQ(misplaced.load(), 0);
}

TEST(WorkerPool, AffinityIndexOutOfRangeThrows) {
  worker_pool pool(2);
  auto* t = make_task([] {}, nullptr);
  EXPECT_THROW(pool.enqueue_affine(7, t), rdp::contract_error);
  t->execute_and_destroy(t);  // avoid the leak after the rejected enqueue
}

// The "artificial dependency" microcosm (paper §III-B): with a join between
// two stages, no stage-2 task may start before every stage-1 task finished.
TEST(TaskGroup, JoinOrdersStagesGlobally) {
  worker_pool pool(4);
  std::atomic<int> stage1_done{0};
  std::atomic<bool> violated{false};
  pool.run([&] {
    task_group g1(pool);
    for (int i = 0; i < 50; ++i)
      g1.spawn([&] { stage1_done.fetch_add(1, std::memory_order_acq_rel); });
    g1.wait();  // the join — an artificial barrier for unrelated tasks
    task_group g2(pool);
    for (int i = 0; i < 50; ++i)
      g2.spawn([&] {
        if (stage1_done.load(std::memory_order_acquire) != 50)
          violated.store(true);
      });
    g2.wait();
  });
  EXPECT_FALSE(violated.load());
}

// ------------------------------------------------ queue overflow policy ----
// A full queue must make the producer back off and retry, NEVER execute the
// task in the producer's stack frame: inline execution of a retry-style
// task re-enters enqueue before the current frame returns and recurses
// unboundedly. The tests detect inline execution precisely: a task that
// runs on the producer's thread WHILE the producer is still inside its
// enqueue loop.

TEST(WorkerPool, FullInjectionQueueBlocksProducerInsteadOfInlining) {
  worker_pool pool(1, /*injection_capacity=*/4);

  // Gate the only worker so the injection queue cannot drain.
  std::atomic<bool> gate_entered{false}, release{false};
  pool.enqueue(make_task(
      [&] {
        gate_entered.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire))
          std::this_thread::sleep_for(std::chrono::microseconds(50));
      },
      nullptr));
  while (!gate_entered.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::microseconds(50));

  constexpr int kTasks = 24;
  std::atomic<int> completed{0};
  std::atomic<int> inline_runs{0};
  std::atomic<bool> producing{true};
  std::thread producer([&] {
    const auto producer_tid = std::this_thread::get_id();
    for (int i = 0; i < kTasks; ++i) {
      pool.enqueue(make_task(
          [&, producer_tid] {
            if (std::this_thread::get_id() == producer_tid &&
                producing.load(std::memory_order_acquire))
              inline_runs.fetch_add(1);
            completed.fetch_add(1, std::memory_order_acq_rel);
          },
          nullptr));
    }
    producing.store(false, std::memory_order_release);
  });

  // The queue (capacity 4) overflows with the worker gated: the producer
  // must now be parked in its bounded-backoff retry loop, with nothing
  // executed anywhere.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(completed.load(), 0);
  EXPECT_EQ(inline_runs.load(), 0);

  release.store(true, std::memory_order_release);
  producer.join();
  while (completed.load(std::memory_order_acquire) < kTasks)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  EXPECT_EQ(inline_runs.load(), 0);
  EXPECT_GT(pool.stats().overflow_retries, 0u);
}

TEST(WorkerPool, AffinityQueueOverflowStressNeverRunsInline) {
  // Overflow the 4096-slot affinity queue of a gated worker from an
  // external producer: the excess must spill to the injection queue (and
  // so to the other worker), never into the producer's stack frame.
  worker_pool pool(2);

  std::atomic<bool> gate_entered{false}, release{false};
  pool.enqueue_affine(0, make_task(
                             [&] {
                               gate_entered.store(true,
                                                  std::memory_order_release);
                               while (!release.load(std::memory_order_acquire))
                                 std::this_thread::sleep_for(
                                     std::chrono::microseconds(50));
                             },
                             nullptr));
  while (!gate_entered.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::microseconds(50));

  constexpr int kTasks = 5000;  // > 4096: guaranteed affinity overflow
  std::atomic<int> completed{0};
  std::atomic<int> inline_runs{0};
  std::atomic<bool> producing{true};
  std::thread producer([&] {
    const auto producer_tid = std::this_thread::get_id();
    for (int i = 0; i < kTasks; ++i) {
      pool.enqueue_affine(0, make_task(
                                 [&, producer_tid] {
                                   if (std::this_thread::get_id() ==
                                           producer_tid &&
                                       producing.load(
                                           std::memory_order_acquire))
                                     inline_runs.fetch_add(1);
                                   completed.fetch_add(
                                       1, std::memory_order_acq_rel);
                                 },
                                 nullptr));
    }
    producing.store(false, std::memory_order_release);
  });
  producer.join();  // must terminate: overflow spills to injection
  EXPECT_EQ(inline_runs.load(), 0);

  release.store(true, std::memory_order_release);
  while (completed.load(std::memory_order_acquire) < kTasks)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  EXPECT_EQ(inline_runs.load(), 0);
  EXPECT_EQ(completed.load(), kTasks);
}

TEST(WorkerPool, WorkerSideAffinityOverflowFallsBackToOwnDeque) {
  // Same overflow produced FROM a worker thread: the excess goes to the
  // producing worker's own deque (unbounded), again never inline.
  worker_pool pool(2);

  std::atomic<bool> gate_entered{false}, release{false};
  pool.enqueue_affine(0, make_task(
                             [&] {
                               gate_entered.store(true,
                                                  std::memory_order_release);
                               while (!release.load(std::memory_order_acquire))
                                 std::this_thread::sleep_for(
                                     std::chrono::microseconds(50));
                             },
                             nullptr));
  while (!gate_entered.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::microseconds(50));

  constexpr int kTasks = 4200;  // > 4096
  std::atomic<int> completed{0};
  std::atomic<int> inline_runs{0};
  std::atomic<bool> producing{true};
  std::atomic<bool> produced{false};
  // The producing task lands on worker 1 (worker 0 is gated).
  pool.enqueue(make_task(
      [&] {
        const auto producer_tid = std::this_thread::get_id();
        for (int i = 0; i < kTasks; ++i) {
          pool.enqueue_affine(0, make_task(
                                     [&, producer_tid] {
                                       if (std::this_thread::get_id() ==
                                               producer_tid &&
                                           producing.load(
                                               std::memory_order_acquire))
                                         inline_runs.fetch_add(1);
                                       completed.fetch_add(
                                           1, std::memory_order_acq_rel);
                                     },
                                     nullptr));
        }
        producing.store(false, std::memory_order_release);
        produced.store(true, std::memory_order_release);
      },
      nullptr));
  while (!produced.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  EXPECT_EQ(inline_runs.load(), 0);

  release.store(true, std::memory_order_release);
  while (completed.load(std::memory_order_acquire) < kTasks)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  EXPECT_EQ(inline_runs.load(), 0);
}

}  // namespace
