// Tests for the rdp::obs observability layer: tracer sessions, per-thread
// buffers and drop accounting, name interning, the per-phase summary
// (including nested helper runs), and a full round trip of a real fork-join
// execution through the Chrome trace_event JSON exporter, validated with a
// small JSON parser.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "forkjoin/task_group.hpp"
#include "forkjoin/worker_pool.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/sampler.hpp"
#include "obs/summary.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace rdp;
using obs::event;
using obs::event_kind;

obs::tracer& trc() { return obs::tracer::instance(); }

// ------------------------------------------------------------ tracer ----

TEST(Tracer, EmitCollectRoundTrip) {
  auto& t = trc();
  t.start();
  const auto name = t.intern("roundtrip");
  t.emit(event_kind::item_put, name, 11, 22);
  t.emit(event_kind::item_get, name, 33, 44);
  t.stop();
  const auto events = t.collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, event_kind::item_put);
  EXPECT_EQ(events[0].arg0, 11u);
  EXPECT_EQ(events[0].arg1, 22u);
  EXPECT_EQ(t.name(events[0].name), "roundtrip");
  EXPECT_EQ(events[1].kind, event_kind::item_get);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_GE(events[0].tid, 0);  // collect() stamps thread ids
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(Tracer, MacroIsGuardedByEnabledFlag) {
  auto& t = trc();
  t.start();
  t.stop();
  ASSERT_EQ(t.collect().size(), 0u);
  // Disabled: the macro must not record.
  RDP_TRACE_EVENT(event_kind::item_put, 0, 1, 2);
  EXPECT_EQ(t.collect().size(), 0u);
  t.start();
  RDP_TRACE_EVENT(event_kind::item_put, 0, 1, 2);
  t.stop();
#ifdef RDP_TRACE_DISABLED
  EXPECT_EQ(t.collect().size(), 0u);  // compiled out entirely
#else
  EXPECT_EQ(t.collect().size(), 1u);
#endif
}

TEST(Tracer, FullBufferDropsAndCounts) {
  auto& t = trc();
  t.start(/*per_thread_capacity=*/4);
  for (int i = 0; i < 10; ++i)
    t.emit(event_kind::counter_sample, 0, static_cast<std::uint64_t>(i), 0);
  t.stop();
  EXPECT_EQ(t.collect().size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // The next session resets the drop counter and the buffer.
  t.start();
  t.stop();
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.collect().size(), 0u);
}

TEST(Tracer, InternIsIdempotentAndResolvable) {
  auto& t = trc();
  const auto a = t.intern("collection-a");
  EXPECT_EQ(t.intern("collection-a"), a);
  EXPECT_NE(t.intern("collection-b"), a);
  EXPECT_EQ(t.name(a), "collection-a");
  EXPECT_EQ(t.name(0), "");
}

TEST(Tracer, ThreadsGetDistinctTids) {
  auto& t = trc();
  t.start();
  t.emit(event_kind::item_put, 0, 0, 0);
  std::thread other([&] {
    t.set_thread_label("other thread");
    t.emit(event_kind::item_put, 0, 1, 0);
  });
  other.join();
  t.stop();
  const auto events = t.collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  const auto labels = t.thread_labels();
  bool labelled = false;
  for (const auto& l : labels) labelled = labelled || l == "other thread";
  EXPECT_TRUE(labelled);
}

// ----------------------------------------------------------- summary ----

TEST(Summary, AttributesEventsToPhases) {
  auto& t = trc();
  t.start();
  t.begin_phase("alpha");
  t.emit(event_kind::task_run_begin, 0, 1, 0);
  t.emit(event_kind::task_run_end, 0, 1, 0);
  t.emit(event_kind::step_abort, 0, 0, 0);
  t.begin_phase("beta");
  t.emit(event_kind::step_resume, 0, 0, 0);
  t.emit(event_kind::task_steal, 0, 0, 1);
  t.stop();
  const auto phases = obs::summarize(t.collect(), t);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].phase, "alpha");
  EXPECT_EQ(phases[0].tasks_run, 1u);
  EXPECT_EQ(phases[0].step_aborts, 1u);
  EXPECT_EQ(phases[0].step_reexecs, 0u);
  EXPECT_EQ(phases[1].phase, "beta");
  EXPECT_EQ(phases[1].step_reexecs, 1u);
  EXPECT_EQ(phases[1].steals, 1u);
}

TEST(Summary, NestedHelperRunsBothCounted) {
  // A helping join runs a nested task inside an outer one on the same
  // thread; begin/end pair LIFO and BOTH runs must be counted — and the
  // outer one in the phase it BEGAN in, even if it ends in the next phase.
  auto& t = trc();
  t.start();
  t.begin_phase("outer-phase");
  t.emit(event_kind::task_run_begin, 0, 1, 0);  // outer
  t.emit(event_kind::task_run_begin, 0, 2, 0);  // nested (helping)
  t.emit(event_kind::task_run_end, 0, 2, 0);
  t.begin_phase("late-phase");
  t.emit(event_kind::task_run_end, 0, 1, 0);  // outer ends after the marker
  t.stop();
  const auto phases = obs::summarize(t.collect(), t);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].phase, "outer-phase");
  EXPECT_EQ(phases[0].tasks_run, 2u);  // nested AND outer
  EXPECT_EQ(phases[1].tasks_run, 0u);
}

// -------------------------------------------- minimal JSON validation ----
// A tiny recursive-descent parser, just rich enough for the exporter's
// output (objects, arrays, strings, numbers, flat values). Throws
// std::runtime_error on malformed input.

struct json_value {
  enum class type { object, array, string, number, null_t } t = type::null_t;
  std::map<std::string, json_value> obj;
  std::vector<json_value> arr;
  std::string str;
  double num = 0;
};

class json_parser {
public:
  explicit json_parser(const std::string& s) : s_(s) {}

  json_value parse() {
    json_value v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing data");
    return v;
  }

private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    ++pos_;
  }
  json_value value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        json_value v;
        v.t = json_value::type::string;
        v.str = string();
        return v;
      }
      default: return number();
    }
  }
  json_value object() {
    expect('{');
    json_value v;
    v.t = json_value::type::object;
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      std::string key = string();
      expect(':');
      v.obj.emplace(std::move(key), value());
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }
  json_value array() {
    expect('[');
    json_value v;
    v.t = json_value::type::array;
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.arr.push_back(value());
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }
  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': pos_ += 4; out += '?'; break;
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }
  json_value number() {
    skip_ws();
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E'))
      ++end;
    if (end == pos_) throw std::runtime_error("expected number");
    json_value v;
    v.t = json_value::type::number;
    v.num = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------- chrome round trip ----

TEST(ChromeTrace, RealForkJoinRunRoundTripsThroughJson) {
#ifdef RDP_TRACE_DISABLED
  GTEST_SKIP() << "tracer compiled out (RDP_TRACE=OFF)";
#else
  auto& t = trc();
  t.start();
  t.set_thread_label("environment");
  std::atomic<int> leaves{0};
  {
    forkjoin::worker_pool pool(2);
    forkjoin::parallel_for(pool, 0, 256, 4,
                           [&](std::size_t) { ++leaves; });
  }
  t.stop();
  EXPECT_EQ(leaves.load(), 256);

  const auto events = t.collect();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(t.dropped(), 0u);

  std::ostringstream os;
  obs::write_chrome_trace(os, events, t);
  const std::string json = os.str();
  json_parser parser(json);
  json_value root;
  ASSERT_NO_THROW(root = parser.parse());
  ASSERT_EQ(root.t, json_value::type::object);
  ASSERT_TRUE(root.obj.count("traceEvents"));
  const auto& arr = root.obj.at("traceEvents").arr;
  // Metadata (thread_name) + one JSON object per collected event.
  ASSERT_GE(arr.size(), events.size());

  std::map<double, std::vector<double>> open_per_tid;  // tid -> begin ts
  bool saw_spawn_or_inject = false, saw_task = false;
  for (const auto& e : arr) {
    ASSERT_EQ(e.t, json_value::type::object);
    ASSERT_TRUE(e.obj.count("ph"));
    ASSERT_TRUE(e.obj.count("name"));
    const std::string& ph = e.obj.at("ph").str;
    const std::string& name = e.obj.at("name").str;
    if (ph == "M") continue;  // metadata carries no ts
    ASSERT_TRUE(e.obj.count("tid"));
    ASSERT_TRUE(e.obj.count("ts"));
    const double tid = e.obj.at("tid").num;
    const double ts = e.obj.at("ts").num;
    saw_spawn_or_inject = saw_spawn_or_inject || name == "task_spawn" ||
                          name == "task_inject";
    if (ph == "B") {
      EXPECT_EQ(name, "task");
      saw_task = true;
      open_per_tid[tid].push_back(ts);
    } else if (ph == "E") {
      // Every E closes the most recent B on the same thread (LIFO), so
      // slices nest and never cross.
      auto& stack = open_per_tid[tid];
      ASSERT_FALSE(stack.empty()) << "E without open B on tid " << tid;
      EXPECT_LE(stack.back(), ts);
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : open_per_tid)
    EXPECT_TRUE(stack.empty()) << "unclosed B on tid " << tid;
  EXPECT_TRUE(saw_task);
  EXPECT_TRUE(saw_spawn_or_inject);
#endif
}

// ----------------------------------------------------------- sampler ----

TEST(Sampler, EmitsCounterSamplesWhileRunning) {
#ifdef RDP_TRACE_DISABLED
  GTEST_SKIP() << "tracer compiled out (RDP_TRACE=OFF)";
#else
  auto& t = trc();
  t.start();
  std::atomic<std::uint64_t> level{42};
  obs::sampler s(std::chrono::microseconds(100));
  s.add_gauge("level", [&] { return level.load(); });
  s.start();
  // Deadline loop, not a fixed sleep: sanitizer builds start threads slowly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (s.samples_taken() == 0 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  s.stop();
  t.stop();
  EXPECT_GT(s.samples_taken(), 0u);
  std::uint64_t samples = 0;
  for (const auto& e : t.collect())
    if (e.kind == event_kind::counter_sample) {
      ++samples;
      EXPECT_EQ(e.arg0, 42u);
      EXPECT_EQ(t.name(e.name), "level");
    }
  EXPECT_GT(samples, 0u);
#endif
}

}  // namespace
