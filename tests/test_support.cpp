// Unit tests for the support library: math helpers, aligned storage,
// matrices/tiles, RNG and workload generators, CSV/table output, CLI parsing.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>

#include "support/aligned_buffer.hpp"
#include "support/assertions.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/math_utils.hpp"
#include "support/matrix.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table_printer.hpp"

namespace {

using namespace rdp;

TEST(MathUtils, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(8, 4), 2);
  EXPECT_EQ(ceil_div<std::uint64_t>(1'000'000'007ULL, 64), 15'625'001ULL);
}

TEST(MathUtils, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 63));
  EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
}

TEST(MathUtils, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(1ULL << 40), 40u);
}

TEST(MathUtils, RoundUpPow2) {
  EXPECT_EQ(round_up_pow2(1), 1u);
  EXPECT_EQ(round_up_pow2(2), 2u);
  EXPECT_EQ(round_up_pow2(3), 4u);
  EXPECT_EQ(round_up_pow2(1000), 1024u);
}

TEST(MathUtils, CheckedMulOverflowThrows) {
  EXPECT_EQ(checked_mul(1ULL << 30, 1ULL << 30), 1ULL << 60);
  EXPECT_THROW(checked_mul(1ULL << 40, 1ULL << 40), contract_error);
}

TEST(MathUtils, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
}

TEST(Assertions, RequireThrowsWithMessage) {
  try {
    RDP_REQUIRE_MSG(1 == 2, "broken arithmetic");
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("broken arithmetic"),
              std::string::npos);
  }
}

TEST(AlignedBuffer, AlignmentAndSize) {
  aligned_buffer<double> buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                k_cache_line_bytes,
            0u);
}

TEST(AlignedBuffer, ZeroFill) {
  aligned_buffer<int> buf(257, /*zero=*/true);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  aligned_buffer<int> a(16);
  a[0] = 42;
  int* p = a.data();
  aligned_buffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42);
}

TEST(Matrix, IndexingIsRowMajor) {
  matrix<double> m(3, 4);
  m(1, 2) = 7.5;
  EXPECT_DOUBLE_EQ(m.data()[1 * 4 + 2], 7.5);
}

TEST(Matrix, TileViewAddressesQuadrants) {
  matrix<int> m(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) m(i, j) = static_cast<int>(10 * i + j);
  auto v = m.view();
  auto q11 = v.quadrant(1, 1);
  EXPECT_EQ(q11.rows(), 2u);
  EXPECT_EQ(q11(0, 0), 22);
  EXPECT_EQ(q11(1, 1), 33);
  // Writing through the view writes the underlying matrix.
  q11(0, 1) = -1;
  EXPECT_EQ(m(2, 3), -1);
}

TEST(Matrix, TileAddressing) {
  matrix<int> m(8, 8);
  m(6, 2) = 99;
  auto t = m.tile(3, 1, 2);  // rows 6..7, cols 2..3
  EXPECT_EQ(t(0, 0), 99);
}

TEST(Matrix, MaxAbsDiff) {
  matrix<double> a(2, 2), b(2, 2);
  a(0, 0) = 1.0;
  b(0, 0) = 1.5;
  a(1, 1) = -3.0;
  b(1, 1) = -1.0;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Workloads, DiagDominantIsStrictlyDominant) {
  auto m = make_diag_dominant(32, 42);
  for (std::size_t i = 0; i < 32; ++i) {
    double off = 0;
    for (std::size_t j = 0; j < 32; ++j)
      if (i != j) off += std::abs(m(i, j));
    EXPECT_GT(std::abs(m(i, i)), off);
  }
}

TEST(Workloads, DigraphHasZeroDiagonalAndRequestedDensity) {
  const double inf = 1e18;
  auto w = make_digraph(64, 0.5, 9, inf);
  std::size_t edges = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(w(i, i), 0.0);
    for (std::size_t j = 0; j < 64; ++j)
      if (i != j && w(i, j) < inf) ++edges;
  }
  const double density = static_cast<double>(edges) / (64.0 * 63.0);
  EXPECT_NEAR(density, 0.5, 0.08);
}

TEST(Workloads, DnaUsesOnlyFourBases) {
  auto s = make_dna(4096, 3);
  EXPECT_EQ(s.size(), 4096u);
  for (char c : s)
    EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T') << c;
}

TEST(Csv, RoundTripWithQuoting) {
  csv_writer w({"name", "value"});
  w.add_row({"plain", "1"});
  w.add_row({"has,comma", "2"});
  w.add_row({"has\"quote", "3"});
  const std::string s = w.to_string();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_EQ(w.row_count(), 3u);
}

TEST(Csv, ArityMismatchThrows) {
  csv_writer w({"a", "b"});
  EXPECT_THROW(w.add_row({"only-one"}), contract_error);
}

TEST(Csv, NumericRows) {
  csv_writer w({"x", "y"});
  w.add_row_values({1.5, 2.25});
  EXPECT_NE(w.to_string().find("1.5,2.25"), std::string::npos);
}

TEST(TablePrinter, AlignsColumns) {
  table_printer t({"col", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, NumFormatting) {
  EXPECT_EQ(table_printer::num(1.0), "1");
  EXPECT_EQ(table_printer::num(0.125), "0.125");
  EXPECT_EQ(table_printer::num(123456.0, 4), "1.235e+05");
}

TEST(Cli, ParsesAllTypes) {
  cli_parser p("test");
  std::int64_t n = 0;
  double x = 0;
  std::string s;
  bool b = false;
  p.add_int("n", &n, "an int");
  p.add_double("x", &x, "a double");
  p.add_string("s", &s, "a string");
  p.add_flag("b", &b, "a flag");
  const char* argv[] = {"prog", "--n=42", "--x", "2.5", "--s=hello", "--b"};
  EXPECT_TRUE(p.parse(6, argv));
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
}

TEST(Cli, UnknownFlagThrows) {
  cli_parser p("test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(p.parse(2, argv), std::runtime_error);
}

TEST(Cli, MalformedIntThrows) {
  cli_parser p("test");
  std::int64_t n = 0;
  p.add_int("n", &n, "an int");
  const char* argv[] = {"prog", "--n=4x"};
  EXPECT_THROW(p.parse(2, argv), std::runtime_error);
}

TEST(Cli, HelpReturnsFalse) {
  cli_parser p("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Stopwatch, MeasuresElapsedTime) {
  stopwatch sw;
  // Just sanity: time is monotone non-negative and reset works.
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.millis(), 0.0);
}

}  // namespace
