// Tests for the perf_event_open counter wrapper (src/obs/perf_counters.hpp).
// The environment decides which backend tier is reachable (VMs and
// containers usually lack the PMU), so the tests assert the degradation
// contract rather than specific counter values: every tier must construct,
// start/stop/read without error, and invalid values must read 0.
#include <gtest/gtest.h>

#include <string>

#include "obs/perf_counters.hpp"

namespace {

using namespace rdp;

TEST(PerfCounters, ForcedNullBackendIsInertButSafe) {
  obs::perf_counters pc(/*inherit=*/false, /*force_null=*/true);
  EXPECT_EQ(pc.backend(), obs::perf_backend::null);
  EXPECT_FALSE(pc.available());

  pc.start();
  volatile int sink = 0;
  for (int i = 0; i < 1000; ++i) sink = i;
  pc.stop();
  EXPECT_EQ(sink, 999);

  const obs::perf_sample s = pc.read();
  EXPECT_FALSE(s.cycles.valid);
  EXPECT_FALSE(s.instructions.valid);
  EXPECT_FALSE(s.l1d_misses.valid);
  EXPECT_FALSE(s.llc_misses.valid);
  EXPECT_FALSE(s.task_clock_ns.valid);
  EXPECT_EQ(s.cycles.value, 0u);
  EXPECT_EQ(s.instructions.value, 0u);
  EXPECT_EQ(s.l1d_misses.value, 0u);
  EXPECT_EQ(s.llc_misses.value, 0u);
  EXPECT_EQ(s.task_clock_ns.value, 0u);
  EXPECT_EQ(s.ipc(), 0.0);
}

TEST(PerfCounters, DefaultConstructionNeverFails) {
  // Whatever the machine grants — hardware PMU, software-only, or nothing —
  // construction must succeed and the sample must be internally consistent.
  obs::perf_counters pc(/*inherit=*/false);
  ASSERT_TRUE(pc.backend() == obs::perf_backend::null ||
              pc.backend() == obs::perf_backend::software ||
              pc.backend() == obs::perf_backend::hardware);
  EXPECT_EQ(pc.available(), pc.backend() != obs::perf_backend::null);

  pc.start();
  double sink = 1.0;
  for (int i = 1; i < 200000; ++i) sink += 1.0 / i;
  pc.stop();
  ASSERT_GT(sink, 1.0);

  const obs::perf_sample s = pc.read();
  // Invalid slots read 0; valid ones measured a real busy loop.
  if (!s.cycles.valid) {
    EXPECT_EQ(s.cycles.value, 0u);
  }
  if (!s.instructions.valid) {
    EXPECT_EQ(s.instructions.value, 0u);
  }
  if (s.cycles.valid && s.instructions.valid) {
    EXPECT_GT(s.cycles.value, 0u);
    EXPECT_GT(s.instructions.value, 0u);
    EXPECT_GT(s.ipc(), 0.0);
  }
  if (s.task_clock_ns.valid) {
    EXPECT_GT(s.task_clock_ns.value, 0u);
  }
  if (pc.backend() == obs::perf_backend::hardware) {
    EXPECT_TRUE(s.cycles.valid || s.instructions.valid ||
                s.l1d_misses.valid || s.llc_misses.valid);
  }
}

TEST(PerfCounters, StartStopAreIdempotentAcrossWindows) {
  // One instance, many phases: each start() must reset the previous
  // window's totals (the bench harness reuses one inherited instance).
  obs::perf_counters pc(/*inherit=*/false);
  pc.start();
  pc.stop();
  const obs::perf_sample empty_window = pc.read();
  pc.start();
  double sink = 1.0;
  for (int i = 1; i < 200000; ++i) sink += 1.0 / i;
  pc.stop();
  ASSERT_GT(sink, 1.0);
  const obs::perf_sample busy_window = pc.read();
  if (busy_window.task_clock_ns.valid) {
    ASSERT_TRUE(empty_window.task_clock_ns.valid);
    EXPECT_GE(busy_window.task_clock_ns.value,
              empty_window.task_clock_ns.value);
  }
  // Reading twice without an intervening start() is stable.
  const obs::perf_sample again = pc.read();
  EXPECT_EQ(again.task_clock_ns.value, busy_window.task_clock_ns.value);
  EXPECT_EQ(again.cycles.valid, busy_window.cycles.valid);
}

TEST(PerfCounters, BackendNamesAreStable) {
  EXPECT_EQ(std::string(to_string(obs::perf_backend::null)), "null");
  EXPECT_EQ(std::string(to_string(obs::perf_backend::software)), "software");
  EXPECT_EQ(std::string(to_string(obs::perf_backend::hardware)), "hardware");
}

}  // namespace
