// Tests for the always-on metrics substrate (obs/metrics).
//
// The histogram checks are hand-computed from the bucketing math (16 linear
// sub-buckets per octave, values < 16 exact) rather than recomputed through
// the library, so a bucketing regression cannot cancel out of both sides.
// The concurrency stress runs under the `runtime` ctest label, i.e. also
// under TSan/UBSan via the sanitizer presets.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace {

using namespace rdp::obs;

/// Metrics are registered process-wide and never destroyed; every test uses
/// its own names so state cannot leak between tests.
std::string uniq(const char* stem) {
  static std::atomic<int> n{0};
  return std::string("test.") + stem + "." +
         std::to_string(n.fetch_add(1));
}

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { set_metrics_enabled(true); }
  void TearDown() override { set_metrics_enabled(true); }
};

// ---- bucketing math --------------------------------------------------------

TEST_F(MetricsTest, BucketIndexIsExactBelowSixteen) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(histogram_bucket_index(v), v);
    EXPECT_EQ(histogram_bucket_lower(v), v);
    EXPECT_EQ(histogram_bucket_upper(v), v);
    EXPECT_EQ(histogram_bucket_mid(v), v);
  }
}

TEST_F(MetricsTest, BucketBoundsBracketTheValue) {
  std::uint64_t prev_idx = 0;
  for (std::uint64_t v = 0; v < (1u << 20); v = v < 64 ? v + 1 : v * 5 / 4) {
    const std::size_t idx = histogram_bucket_index(v);
    EXPECT_GE(idx, prev_idx) << v;  // monotone
    prev_idx = idx;
    EXPECT_LE(histogram_bucket_lower(idx), v);
    EXPECT_GE(histogram_bucket_upper(idx), v);
    if (v >= 16) {
      // Relative width <= 1/16 = 6.25% of the bucket's lower bound.
      const double width = static_cast<double>(histogram_bucket_upper(idx) -
                                               histogram_bucket_lower(idx));
      EXPECT_LE(width,
                static_cast<double>(histogram_bucket_lower(idx)) / 16.0);
    }
  }
}

TEST_F(MetricsTest, HandComputedBucketOfOneHundred) {
  // 100 = 0b1100100: msb 6, shift 2, idx = (2<<4) + 25 = 57. The bucket
  // covers [100, 103], midpoint 101.
  EXPECT_EQ(histogram_bucket_index(100), 57u);
  EXPECT_EQ(histogram_bucket_lower(57), 100u);
  EXPECT_EQ(histogram_bucket_upper(57), 103u);
  EXPECT_EQ(histogram_bucket_mid(57), 101u);
}

// ---- counters and gauges ---------------------------------------------------

TEST_F(MetricsTest, CounterSumsAcrossValues) {
  counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, GaugeGoesNegative) {
  gauge g;
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);
  g.sub(4);
  EXPECT_EQ(g.value(), -1);
}

TEST_F(MetricsTest, DisabledRecordersAreNoOps) {
  counter c;
  histogram h;
  set_metrics_enabled(false);
  c.add(7);
  h.record(7);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(h.snapshot().empty());
  set_metrics_enabled(true);
  c.add(7);
  h.record(7);
  EXPECT_EQ(c.value(), 7u);
  EXPECT_EQ(h.snapshot().count(), 1u);
}

// ---- histogram quantiles (hand-computed) -----------------------------------

TEST_F(MetricsTest, ExactQuantilesForSmallValues) {
  // Values 1..10 land in exact buckets: the q-quantile is the
  // ceil(q*10)-th observation itself.
  histogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  const histogram_snapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 10u);
  EXPECT_EQ(s.quantile(0.50), 5u);
  EXPECT_EQ(s.quantile(0.90), 9u);
  EXPECT_EQ(s.quantile(0.99), 10u);
  EXPECT_EQ(s.quantile(1.0), 10u);  // exact max
  EXPECT_EQ(s.max, 10u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

TEST_F(MetricsTest, QuantilesUseBucketMidpoints) {
  // 1000 observations of 100 all land in bucket [100, 103] (mid 101);
  // every interior quantile reports the midpoint, q=1 the exact max.
  histogram h;
  for (int i = 0; i < 1000; ++i) h.record(100);
  const histogram_snapshot s = h.snapshot();
  EXPECT_EQ(s.quantile(0.50), 101u);
  EXPECT_EQ(s.quantile(0.99), 101u);
  EXPECT_EQ(s.quantile(1.0), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 101.0);
}

TEST_F(MetricsTest, MixedDistributionQuantiles) {
  // 900 x 10 (exact bucket), 90 x 100 (mid 101), 10 x 1000 (bucket
  // [1000, 1015], mid 1007). Ranks: p50 -> 500th = 10, p90 -> 900th = 10,
  // p99 -> 990th = 101, max exact.
  histogram h;
  for (int i = 0; i < 900; ++i) h.record(10);
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(1000);
  const histogram_snapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_EQ(s.quantile(0.50), 10u);
  EXPECT_EQ(s.quantile(0.90), 10u);
  EXPECT_EQ(s.quantile(0.99), 101u);
  EXPECT_EQ(s.quantile(1.0), 1000u);
}

TEST_F(MetricsTest, OverflowBucketKeepsExactMax) {
  histogram h;
  h.record(k_histogram_max + 12345);
  h.record(5);
  const histogram_snapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 2u);
  ASSERT_EQ(s.buckets.size(), k_histogram_buckets);
  EXPECT_EQ(s.buckets[k_histogram_overflow_bucket], 1u);
  EXPECT_EQ(s.max, k_histogram_max + 12345);
  // The overflow bucket reports the exact maximum, not a midpoint.
  EXPECT_EQ(s.quantile(1.0), k_histogram_max + 12345);
  EXPECT_EQ(s.quantile(0.99), k_histogram_max + 12345);
}

// ---- merge -----------------------------------------------------------------

TEST_F(MetricsTest, MergeIsExactAndAssociative) {
  histogram ha, hb, hc, hall;
  auto feed = [&](histogram& h, std::uint64_t seed, int count) {
    std::uint64_t x = seed;
    for (int i = 0; i < count; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t v = x >> 40;  // 24-bit values
      h.record(v);
      hall.record(v);
    }
  };
  feed(ha, 1, 500);
  feed(hb, 2, 300);
  feed(hc, 3, 200);

  histogram_snapshot left = ha.snapshot();   // (a + b) + c
  left.merge(hb.snapshot());
  left.merge(hc.snapshot());
  histogram_snapshot right = hb.snapshot();  // a + (b + c)
  right.merge(hc.snapshot());
  histogram_snapshot a = ha.snapshot();
  a.merge(right);

  EXPECT_EQ(left, a);
  EXPECT_EQ(left, hall.snapshot());  // merge == recording into one
  EXPECT_EQ(left.count(), 1000u);
}

// ---- registry --------------------------------------------------------------

TEST_F(MetricsTest, RegistryReturnsStableReferences) {
  const std::string name = uniq("ctr");
  counter& a = metrics_registry::instance().get_counter(name);
  counter& b = metrics_registry::instance().get_counter(name);
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST_F(MetricsTest, SnapshotCarriesAllThreeKinds) {
  auto& reg = metrics_registry::instance();
  const std::string cn = uniq("c"), gn = uniq("g"), hn = uniq("h");
  reg.get_counter(cn).add(7);
  reg.get_gauge(gn).add(-2);
  reg.get_histogram(hn).record(100);

  bool saw_c = false, saw_g = false, saw_h = false;
  for (const metric_sample& m : reg.snapshot()) {
    if (m.name == cn) {
      saw_c = true;
      EXPECT_EQ(m.kind, metric_kind::counter);
      EXPECT_EQ(m.value, 7u);
    } else if (m.name == gn) {
      saw_g = true;
      EXPECT_EQ(m.kind, metric_kind::gauge);
      EXPECT_EQ(m.gauge_value, -2);
    } else if (m.name == hn) {
      saw_h = true;
      EXPECT_EQ(m.kind, metric_kind::histogram);
      EXPECT_EQ(m.hist.count(), 1u);
      EXPECT_EQ(m.hist.max, 100u);
    }
  }
  EXPECT_TRUE(saw_c && saw_g && saw_h);

  reg.reset();
  for (const metric_sample& m : reg.snapshot()) {
    if (m.name == cn) {
      EXPECT_EQ(m.value, 0u);
    }
    if (m.name == hn) {
      EXPECT_TRUE(m.hist.empty());
    }
  }
}

TEST_F(MetricsTest, SnapshotIsSortedByName) {
  auto& reg = metrics_registry::instance();
  reg.get_counter(uniq("zz"));
  reg.get_counter(uniq("aa"));
  const auto snap = reg.snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LE(snap[i - 1].name, snap[i].name);
}

// ---- sampling helper -------------------------------------------------------

TEST_F(MetricsTest, SampledFiresEveryMaskPlusOne) {
  std::uint32_t site = 0;
  int fired = 0;
  for (int i = 1; i <= 256; ++i)
    if (metrics_sampled(site, 63)) {
      ++fired;
      EXPECT_EQ(i % 64, 0) << i;
    }
  EXPECT_EQ(fired, 4);
}

// ---- request-scoped deltas --------------------------------------------------

TEST_F(MetricsTest, HistogramDeltaCoversExactlyTheWindow) {
  histogram h;
  h.record(3);
  h.record(100);
  const histogram_snapshot before = h.snapshot();
  h.record(7);
  h.record(7);
  h.record(5000);  // new process max, inside the window
  const histogram_snapshot after = h.snapshot();
  const histogram_snapshot d = histogram_delta(before, after);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_EQ(d.max, after.max);
  // Window mean: (7 + 7 + ~5000) / 3 — bucket midpoints, so just bound it.
  EXPECT_GT(d.mean(), 1000.0);
  EXPECT_LT(d.mean(), 3000.0);
  // Empty window: delta of identical snapshots is all-zero.
  const histogram_snapshot zero = histogram_delta(after, after);
  EXPECT_EQ(zero.count(), 0u);
}

TEST_F(MetricsTest, SnapshotDeltaIsPerRequestScoped) {
  auto& reg = metrics_registry::instance();
  const std::string c_name = uniq("delta.counter"), g_name = uniq("delta.gauge"),
                    h_name = uniq("delta.hist"),
                    untouched_name = uniq("delta.untouched");
  counter& c = reg.get_counter(c_name);
  gauge& g = reg.get_gauge(g_name);
  histogram& h = reg.get_histogram(h_name);
  counter& untouched = reg.get_counter(untouched_name);
  untouched.add(9);  // pre-window activity must not leak into the delta
  c.add(2);

  const std::vector<metric_sample> before = reg.snapshot();
  c.add(5);
  g.add(4);
  g.sub(1);
  h.record(42);
  const std::string late_name = uniq("delta.late");
  reg.get_counter(late_name).add(7);  // registered inside the window
  const std::vector<metric_sample> after = reg.snapshot();

  const std::vector<metric_sample> d = snapshot_delta(before, after);
  auto find = [&](const std::string& name) -> const metric_sample* {
    for (const metric_sample& s : d)
      if (s.name == name) return &s;
    return nullptr;
  };
  ASSERT_NE(find(c_name), nullptr);
  EXPECT_EQ(find(c_name)->value, 5u);  // not the lifetime 7
  ASSERT_NE(find(g_name), nullptr);
  EXPECT_EQ(find(g_name)->gauge_value, 3);
  ASSERT_NE(find(h_name), nullptr);
  EXPECT_EQ(find(h_name)->hist.count(), 1u);
  ASSERT_NE(find(late_name), nullptr);  // full value: it IS window activity
  EXPECT_EQ(find(late_name)->value, 7u);
  EXPECT_EQ(find(untouched_name), nullptr);  // zero deltas are dropped
}

// ---- concurrency stress (runs under TSan via the runtime label) ------------

TEST_F(MetricsTest, ConcurrentCountsAreExactWhenQuiescent) {
  constexpr int k_threads = 8;
  constexpr int k_per_thread = 50000;
  counter c;
  gauge g;
  histogram h;
  std::vector<std::thread> threads;
  threads.reserve(k_threads);
  for (int t = 0; t < k_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < k_per_thread; ++i) {
        c.add();
        g.add(2);
        g.sub(1);
        h.record(static_cast<std::uint64_t>(t * 1000 + (i & 511)));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(c.value(), std::uint64_t(k_threads) * k_per_thread);
  EXPECT_EQ(g.value(), std::int64_t(k_threads) * k_per_thread);
  const histogram_snapshot s = h.snapshot();
  EXPECT_EQ(s.count(), std::uint64_t(k_threads) * k_per_thread);
  EXPECT_EQ(s.max, 7000u + 511u);
}

TEST_F(MetricsTest, ConcurrentRegistryRegistrationIsSafe) {
  const std::string shared = uniq("shared");
  constexpr int k_threads = 8;
  std::vector<std::thread> threads;
  std::atomic<counter*> first{nullptr};
  for (int t = 0; t < k_threads; ++t) {
    threads.emplace_back([&] {
      counter& c = metrics_registry::instance().get_counter(shared);
      counter* expected = nullptr;
      first.compare_exchange_strong(expected, &c);
      EXPECT_EQ(first.load(), &c);  // everyone resolves to one instance
      c.add();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(metrics_registry::instance().get_counter(shared).value(),
            std::uint64_t(k_threads));
}

}  // namespace
