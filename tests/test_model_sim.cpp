// Tests for the analytical model (§IV-B formulas) and the discrete-event
// many-core simulator, including the paper's qualitative findings F1-F4.
#include <gtest/gtest.h>

#include <cmath>

#include "model/analytical.hpp"
#include "sim/des.hpp"
#include "sim/experiment.hpp"
#include "sim/machine.hpp"
#include "trace/builders.hpp"

namespace {

using namespace rdp;
using namespace rdp::model;
using namespace rdp::sim;

// ------------------------------- model ------------------------------------

TEST(Model, GeBaseTaskCountClosedFormMatchesTripleSum) {
  for (std::uint64_t t : {1ull, 2ull, 3ull, 5ull, 16ull, 100ull}) {
    std::uint64_t brute = 0;
    for (std::uint64_t k = 0; k < t; ++k) brute += (t - k) * (t - k);
    EXPECT_EQ(ge_base_task_count(t), brute) << t;
  }
}

TEST(Model, TaskCountsForFwAndSw) {
  EXPECT_EQ(fw_base_task_count(8), 512u);
  EXPECT_EQ(sw_base_task_count(8), 64u);
}

TEST(Model, AssignmentBounds) {
  // min (function A interior) < max (function D) for any m > 1.
  for (std::uint64_t m : {2ull, 8ull, 64ull, 2048ull}) {
    EXPECT_LT(ge_min_task_assignments(m), ge_max_task_assignments(m));
  }
  EXPECT_EQ(ge_min_task_assignments(4), 1u + 4u + 9u);  // Σ (m-1-k)^2
  EXPECT_EQ(ge_max_task_assignments(4), 5u * 16u);
}

TEST(Model, MaxCacheMissFormula) {
  // m(1 + (m+1)(1 + ceil((m-1)/L))), L = 8 doubles.
  EXPECT_EQ(max_cache_misses(8, 8), 8u * (1 + 9u * (1 + 1)));
  EXPECT_EQ(max_cache_misses(64, 8), 64u * (1 + 65u * (1 + 8)));
}

TEST(Model, ColdFloorBelowBound) {
  for (std::uint64_t m : {8ull, 64ull, 512ull})
    EXPECT_LT(cold_cache_misses(m, 8), max_cache_misses(m, 8));
}

TEST(Model, PredictedMissesSwitchRegimeAtCapacity) {
  const std::uint64_t m = 128;
  const std::uint64_t fits = cold_cache_misses(m, 8) * 2;      // plenty
  const std::uint64_t tight = cold_cache_misses(m, 8) / 2;     // too small
  EXPECT_EQ(predicted_task_misses(m, 8, fits), cold_cache_misses(m, 8));
  EXPECT_EQ(predicted_task_misses(m, 8, tight), max_cache_misses(m, 8));
}

TEST(Model, EstimatedTimeUShapedInBaseSize) {
  // Small base: task-count pressure, large base: streaming misses — the
  // interior minimum reproduces the U-shape of the Estimated series.
  const auto mach = skylake192();
  const double t64 = estimate_ge_time(8192, 64, mach.model);
  const double t256 = estimate_ge_time(8192, 256, mach.model);
  const double t4096 = estimate_ge_time(8192, 4096, mach.model);
  EXPECT_LT(t256, t4096);
  EXPECT_LE(t256, t64 * 2.0);  // not worse than small base by much
}

TEST(Model, EstimatedTimeGrowsWithProblemSize) {
  const auto mach = epyc64();
  double prev = 0;
  for (std::uint64_t n : {1024ull, 2048ull, 4096ull, 8192ull}) {
    const double t = estimate_ge_time(n, 128, mach.model);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

// -------------------------------- DES --------------------------------------

TEST(Des, SerialChainTakesSumOfDurations) {
  trace::task_graph g;
  auto prev = g.add_node(trace::node_type::base_task, dp::task_kind::A, {}, 1);
  for (int i = 0; i < 9; ++i) {
    auto next =
        g.add_node(trace::node_type::base_task, dp::task_kind::A, {}, 1);
    g.add_edge(prev, next);
    prev = next;
  }
  const auto r = simulate(g, 8, [](const trace::task_node&) { return 2.0; });
  EXPECT_DOUBLE_EQ(r.makespan, 20.0);  // no parallelism available
  EXPECT_NEAR(r.utilization(), 20.0 / (20.0 * 8), 1e-12);
}

TEST(Des, IndependentTasksScalePerfectly) {
  trace::task_graph g;
  for (int i = 0; i < 64; ++i)
    g.add_node(trace::node_type::base_task, dp::task_kind::D, {}, 1);
  const auto r1 = simulate(g, 1, [](const auto&) { return 1.0; });
  const auto r8 = simulate(g, 8, [](const auto&) { return 1.0; });
  const auto r64 = simulate(g, 64, [](const auto&) { return 1.0; });
  EXPECT_DOUBLE_EQ(r1.makespan, 64.0);
  EXPECT_DOUBLE_EQ(r8.makespan, 8.0);
  EXPECT_DOUBLE_EQ(r64.makespan, 1.0);
  EXPECT_NEAR(r64.utilization(), 1.0, 1e-12);
}

TEST(Des, DiamondRespectsDependencies) {
  trace::task_graph g;
  const auto a = g.add_node(trace::node_type::base_task);
  const auto b = g.add_node(trace::node_type::base_task);
  const auto c = g.add_node(trace::node_type::base_task);
  const auto d = g.add_node(trace::node_type::base_task);
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  const auto r = simulate(g, 4, [](const auto&) { return 1.0; });
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);  // a; b∥c; d
}

TEST(Des, MakespanNeverBelowSpanOrWorkOverP) {
  const auto g = trace::build_ge_dataflow(8, 16);
  auto dur = [](const trace::task_node& node) {
    return static_cast<double>(node.work) * 1e-9;
  };
  const auto ws = trace::analyze_work_span(
      g, [&](const trace::task_node& node) { return dur(node); });
  for (unsigned p : {1u, 4u, 16u, 64u}) {
    const auto r = simulate(g, p, dur);
    EXPECT_GE(r.makespan, ws.span - 1e-12);
    EXPECT_GE(r.makespan, ws.total_work / p - 1e-9);
    // Greedy bound: makespan <= T1/P + T∞.
    EXPECT_LE(r.makespan, ws.total_work / p + ws.span + 1e-9);
  }
}

TEST(Des, ZeroDurationSyntheticNodesAreFree) {
  const auto g = trace::build_sw_forkjoin(8, 8);
  const auto r = simulate(g, 4, [](const trace::task_node& node) {
    return node.type == trace::node_type::base_task ? 1.0 : 0.0;
  });
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_EQ(r.tasks, g.node_count());
}

TEST(Des, DeterministicAcrossRuns) {
  const auto g = trace::build_fw_dataflow(8, 8);
  auto dur = [](const trace::task_node& node) {
    return static_cast<double>(node.work) * 1e-9 + 1e-7;
  };
  const auto a = simulate(g, 16, dur);
  const auto b = simulate(g, 16, dur);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.busy_time, b.busy_time);
}

TEST(Des, MoreCoresNeverHurtMakespanOnTheseDags) {
  // Greedy list scheduling can in general suffer anomalies; on these
  // wide, uniform DAGs adding cores must not slow things down.
  const auto g = trace::build_sw_dataflow(16, 16);
  auto dur = [](const trace::task_node&) { return 1.0; };
  double prev = 1e300;
  for (unsigned p : {1u, 2u, 4u, 8u, 16u, 31u}) {
    const auto r = simulate(g, p, dur);
    EXPECT_LE(r.makespan, prev + 1e-9) << p;
    prev = r.makespan;
  }
}

TEST(Des, BusyTimeEqualsSumOfDurations) {
  const auto g = trace::build_ge_dataflow(4, 8);
  const double per_task = 3.5;
  const auto r = simulate(g, 7, [&](const auto&) { return per_task; });
  EXPECT_DOUBLE_EQ(r.busy_time,
                   per_task * static_cast<double>(g.node_count()));
}

// --------------------- the paper's findings, in the DES ---------------------

TEST(Findings, F3SwDataflowBeatsForkjoinEvenAtLargeSizes) {
  const auto mach = skylake192();
  for (std::size_t n : {4096ull, 16384ull}) {
    const auto fj =
        simulate_variant(benchmark::sw, exec_variant::omp_tasking, n, 128,
                         mach);
    const auto df =
        simulate_variant(benchmark::sw, exec_variant::cnc_tuner, n, 128,
                         mach);
    EXPECT_GT(fj.seconds, df.seconds) << "n=" << n;
  }
}

TEST(Findings, F1ForkjoinCatchesUpOnLargeGeInputs) {
  // Fixed machine: the CnC/OMP ratio must move in OMP's favour from the
  // smallest to the largest input (the paper's headline crossover).
  const auto mach = epyc64();
  const auto ratio = [&](std::size_t n) {
    const auto fj = simulate_variant(benchmark::ge,
                                     exec_variant::omp_tasking, n, 128, mach);
    const auto df = simulate_variant(benchmark::ge, exec_variant::cnc_native,
                                     n, 128, mach);
    return df.seconds / fj.seconds;  // < 1 -> CnC wins
  };
  EXPECT_LT(ratio(1024), ratio(16384));
}

TEST(Findings, F2MoreCoresFavourDataflow) {
  // Fixed problem: going from few cores to many cores must improve CnC
  // relative to OMP.
  const auto base_mach = skylake192();
  const auto ratio = [&](unsigned cores) {
    const auto mach = with_cores(base_mach, cores);
    const auto fj = simulate_variant(
        benchmark::ge, exec_variant::omp_tasking, 4096, 256, mach);
    const auto df = simulate_variant(benchmark::ge, exec_variant::cnc_tuner,
                                     4096, 256, mach);
    return df.seconds / fj.seconds;
  };
  EXPECT_LT(ratio(192), ratio(8));
}

TEST(Findings, F4ForkjoinUtilizationDropsWithMoreCores) {
  const auto mk = [&](unsigned cores) {
    return simulate_variant(benchmark::ge, exec_variant::omp_tasking, 2048,
                            128, with_cores(epyc64(), cores));
  };
  EXPECT_GT(mk(8).utilization, mk(128).utilization);
}

TEST(Findings, ManualCncPaysPredeclarationAtSmallBases) {
  // Manual enumerates every base task serially: at tiny base sizes (huge
  // task counts) it must be slower than the tuner variant.
  const auto mach = skylake192();
  const auto manual = simulate_variant(benchmark::ge,
                                       exec_variant::cnc_manual, 8192, 64,
                                       mach);
  const auto tuner = simulate_variant(benchmark::ge, exec_variant::cnc_tuner,
                                      8192, 64, mach);
  EXPECT_GT(manual.seconds, tuner.seconds);
}

TEST(Findings, EstimatedSeriesIsFiniteAndPositive) {
  const auto mach = epyc64();
  for (std::size_t base : {64ull, 256ull, 1024ull}) {
    const double est = estimated_seconds(benchmark::ge, 4096, base, mach);
    EXPECT_GT(est, 0.0);
    EXPECT_TRUE(std::isfinite(est));
  }
}

TEST(MachineProfiles, CoreCountsMatchPaper) {
  EXPECT_EQ(epyc64().cores, 64u);
  EXPECT_EQ(skylake192().cores, 192u);
  EXPECT_EQ(with_cores(epyc64(), 16).cores, 16u);
}

}  // namespace
