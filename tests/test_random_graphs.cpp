// Randomised property tests: arbitrary layered DAGs executed through the
// data-flow runtime (all scheduling policies), through the DES (Graham
// bounds), and random nested spawn trees through the fork-join runtime.
// These catch interaction bugs that hand-written graphs miss.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "cnc/cnc.hpp"
#include "forkjoin/task_group.hpp"
#include "sim/des.hpp"
#include "support/rng.hpp"
#include "trace/task_graph.hpp"

namespace {

using namespace rdp;

// ------------------------- random layered DAGs ----------------------------

struct random_dag {
  std::vector<std::vector<std::uint32_t>> preds;  // per node
  std::size_t node_count() const { return preds.size(); }
};

/// Nodes are grouped in layers; each node draws 0-3 predecessors from
/// earlier layers. Always acyclic.
random_dag make_random_dag(std::uint64_t seed, std::size_t layers = 8,
                           std::size_t width = 12) {
  xoshiro256 rng(seed);
  random_dag dag;
  std::vector<std::uint32_t> earlier;
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t layer_size = 1 + rng.below(width);
    std::vector<std::uint32_t> current;
    for (std::size_t k = 0; k < layer_size; ++k) {
      const auto id = static_cast<std::uint32_t>(dag.preds.size());
      std::vector<std::uint32_t> preds;
      if (!earlier.empty()) {
        const std::size_t deg = rng.below(4);
        for (std::size_t d = 0; d < deg; ++d)
          preds.push_back(earlier[rng.below(earlier.size())]);
        // Dedupe.
        std::sort(preds.begin(), preds.end());
        preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
      }
      dag.preds.push_back(std::move(preds));
      current.push_back(id);
    }
    earlier.insert(earlier.end(), current.begin(), current.end());
  }
  return dag;
}

// -------------------- data-flow execution of random DAGs -------------------

struct dag_ctx;
struct dag_step {
  int execute(std::uint32_t tag, dag_ctx& ctx) const;
  void depends(std::uint32_t tag, dag_ctx& ctx,
               cnc::dependency_collector& dc) const;
};
struct dag_ctx : cnc::context<dag_ctx> {
  const random_dag& dag;
  std::atomic<std::uint64_t> checksum{0};
  cnc::step_collection<dag_ctx, dag_step, std::uint32_t> steps;
  cnc::tag_collection<std::uint32_t> tags{*this, "ctrl"};
  cnc::item_collection<std::uint32_t, std::uint64_t> values{*this, "vals"};
  dag_ctx(const random_dag& d, cnc::schedule_policy policy)
      : cnc::context<dag_ctx>(4), dag(d),
        steps(*this, "node", dag_step{}, policy) {
    tags.prescribe(steps);
  }
};
int dag_step::execute(std::uint32_t tag, dag_ctx& ctx) const {
  // value(v) = v + sum of predecessor values: deterministic per DAG.
  std::uint64_t acc = tag;
  for (std::uint32_t p : ctx.dag.preds[tag]) {
    std::uint64_t v = 0;
    ctx.values.get(p, v);
    acc += v;
  }
  ctx.values.put(tag, acc);
  ctx.checksum.fetch_add(acc, std::memory_order_relaxed);
  return 0;
}
void dag_step::depends(std::uint32_t tag, dag_ctx& ctx,
                       cnc::dependency_collector& dc) const {
  for (std::uint32_t p : ctx.dag.preds[tag]) dc.require(ctx.values, p);
}

std::uint64_t reference_checksum(const random_dag& dag) {
  std::vector<std::uint64_t> value(dag.node_count());
  std::uint64_t checksum = 0;
  for (std::uint32_t v = 0; v < dag.node_count(); ++v) {
    std::uint64_t acc = v;
    for (std::uint32_t p : dag.preds[v]) acc += value[p];  // preds < v
    value[v] = acc;
    checksum += acc;
  }
  return checksum;
}

class RandomDagSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagSweep, CncExecutesRandomDagUnderBothPolicies) {
  const auto dag = make_random_dag(GetParam());
  const auto expected = reference_checksum(dag);
  for (auto policy : {cnc::schedule_policy::spawn_immediately,
                      cnc::schedule_policy::preschedule}) {
    dag_ctx ctx(dag, policy);
    // Adversarial prescription order: sinks first.
    for (std::uint32_t v = static_cast<std::uint32_t>(dag.node_count());
         v-- > 0;)
      ctx.tags.put(v);
    ctx.wait();
    EXPECT_EQ(ctx.checksum.load(), expected) << "seed=" << GetParam();
    EXPECT_EQ(ctx.stats().steps_executed, dag.node_count());
  }
}

TEST_P(RandomDagSweep, DesRespectsGrahamBoundsOnRandomDags) {
  const auto dag = make_random_dag(GetParam(), 10, 16);
  trace::task_graph g;
  xoshiro256 rng(GetParam() * 7 + 1);
  std::vector<double> dur(dag.node_count());
  for (std::uint32_t v = 0; v < dag.node_count(); ++v) {
    g.add_node(trace::node_type::base_task, dp::task_kind::D, {}, 1);
    dur[v] = rng.uniform(0.1, 5.0);
  }
  for (std::uint32_t v = 0; v < dag.node_count(); ++v)
    for (std::uint32_t p : dag.preds[v]) g.add_edge(p, v);
  g.validate();

  auto cost = [&](const trace::task_node& node) {
    // Recover the id from position: nodes were added in id order.
    return dur[static_cast<std::size_t>(&node - g.nodes().data())];
  };
  const auto ws = trace::analyze_work_span(g, cost);
  for (unsigned p : {1u, 3u, 8u, 64u}) {
    const auto r = sim::simulate(g, p, cost);
    EXPECT_GE(r.makespan, ws.span - 1e-9);
    EXPECT_GE(r.makespan, ws.total_work / p - 1e-9);
    EXPECT_LE(r.makespan, ws.total_work / p + ws.span + 1e-9);
    EXPECT_NEAR(r.busy_time, ws.total_work, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------------------- random fork-join spawn trees -----------------------

long run_random_tree(forkjoin::worker_pool& pool, xoshiro256& rng, int depth,
                     std::atomic<long>& executed) {
  executed.fetch_add(1, std::memory_order_relaxed);
  if (depth == 0) return 1;
  const int children = 1 + static_cast<int>(rng.below(3));
  std::vector<long> results(static_cast<std::size_t>(children), 0);
  // Children get decorrelated seeds derived from the parent's stream.
  std::vector<std::uint64_t> seeds;
  for (int c = 0; c < children; ++c) seeds.push_back(rng.next());
  forkjoin::task_group g(pool);
  for (int c = 0; c < children; ++c) {
    g.spawn([&pool, &executed, &results, seeds, c, depth] {
      xoshiro256 child_rng(seeds[static_cast<std::size_t>(c)]);
      results[static_cast<std::size_t>(c)] =
          run_random_tree(pool, child_rng, depth - 1, executed);
    });
  }
  g.wait();
  long total = 1;
  for (long r : results) total += r;
  return total;
}

class RandomTreeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeSweep, NestedSpawnTreeExecutesEveryNodeExactlyOnce) {
  forkjoin::worker_pool pool(4);
  std::atomic<long> executed{0};
  long counted = 0;
  pool.run([&] {
    xoshiro256 rng(GetParam());
    counted = run_random_tree(pool, rng, 6, executed);
  });
  EXPECT_EQ(executed.load(), counted);
  EXPECT_GE(counted, 7);  // at least a path of depth 6 + root
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
