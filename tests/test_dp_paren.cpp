// Parenthesization (matrix-chain multiplication) — the variable-arity
// recurrence of ISSUE 10: tile (I,J) of the upper-triangular cost table
// needs every (I,K) to its left and every (K,J) below it, 2(J-I) keys in
// all, so no fixed dependency capacity can hold it. These tests pin the
// serial spec against the textbook bottom-up loop (and the classic CLRS
// instance), then sweep the recursive/fork-join/tiled/r-way backends for
// bit-identical tables.
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "dp/dp.hpp"
#include "exec/backend.hpp"
#include "forkjoin/worker_pool.hpp"
#include "support/rng.hpp"
#include "support/small_vector.hpp"

namespace {

using namespace rdp;
using namespace rdp::dp;

std::vector<double> random_dims(std::size_t n, std::uint64_t seed) {
  xoshiro256 gen(seed);
  std::vector<double> dims(n + 1);
  for (double& d : dims) d = static_cast<double>(1 + gen.next() % 100);
  return dims;
}

TEST(DpParen, ClrsExampleCostIs15125) {
  // CLRS 3rd ed., §15.2: chain dimensions (30,35,15,5,10,20,25) — the
  // optimal full-product cost is 15125 scalar multiplications.
  const std::vector<double> dims = {30, 35, 15, 5, 10, 20, 25};
  const std::size_t n = dims.size() - 1;
  matrix<double> c(n, n, 0.0);
  paren_loop_serial(c, dims);
  EXPECT_EQ(c(0, n - 1), 15125.0);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(c(i, i), 0.0);
}

TEST(DpParen, SpecSerialMatchesLoopReference) {
  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    for (std::size_t base = 2; base <= n; base *= 2) {
      const auto dims = random_dims(n, 100 + n + base);
      matrix<double> expect(n, n, 0.0);
      paren_loop_serial(expect, dims);

      matrix<double> c(n, n, 0.0);
      const auto spec = make_paren_spec(c, dims, base);
      exec::run_serial(*spec);
      EXPECT_EQ(c, expect) << "n=" << n << " base=" << base;
    }
  }
}

TEST(DpParen, AllRecursiveBackendsMatchLoop) {
  forkjoin::worker_pool pool(3);
  const std::size_t n = 64;
  const auto dims = random_dims(n, 7);
  matrix<double> expect(n, n, 0.0);
  paren_loop_serial(expect, dims);

  for (const std::size_t base : {4u, 8u, 16u}) {
    {
      matrix<double> c(n, n, 0.0);
      exec::run_forkjoin(*make_paren_spec(c, dims, base), pool);
      EXPECT_EQ(c, expect) << "forkjoin base=" << base;
    }
    {
      matrix<double> c(n, n, 0.0);
      exec::run_tiled(*make_paren_spec(c, dims, base), pool);
      EXPECT_EQ(c, expect) << "tiled base=" << base;
    }
    for (const std::size_t r : {2u, 4u}) {
      matrix<double> c(n, n, 0.0);
      exec::run_rway(*make_paren_spec(c, dims, base), r, &pool);
      EXPECT_EQ(c, expect) << "rway r=" << r << " base=" << base;
    }
  }
  // Non-pow2 tiled configuration (diagonal rounds need only base | n).
  {
    const std::size_t odd_n = 60, base = 12;
    const auto odd_dims = random_dims(odd_n, 9);
    matrix<double> loop(odd_n, odd_n, 0.0);
    paren_loop_serial(loop, odd_dims);
    matrix<double> c(odd_n, odd_n, 0.0);
    exec::run_tiled(*make_paren_spec(c, odd_dims, base), pool);
    EXPECT_EQ(c, loop);
  }
}

TEST(DpParen, SpecDeclaresVariableArity) {
  const std::size_t n = 32, base = 4, tiles = n / base;
  matrix<double> c(n, n, 0.0);
  const auto dims = random_dims(n, 21);
  const auto spec = make_paren_spec(c, dims, base);

  EXPECT_EQ(spec->structure(), structure_kind::diagonal_3way);
  EXPECT_EQ(spec->max_dependencies(), 2 * (tiles - 1));
  // Per-tile bound: 2(J-I) keys — diagonal tiles none, the corner most.
  EXPECT_EQ(spec->dependency_bound({0, 0, 0}), 0u);
  EXPECT_EQ(spec->dependency_bound({0, 3, 0}), 6u);
  EXPECT_EQ(spec->dependency_bound(
                {0, static_cast<std::int32_t>(tiles) - 1, 0}),
            2 * (tiles - 1));

  std::size_t count = 0;
  auto counting = [&](const tile3&) { ++count; };
  spec->depends({2, 5, 0}, dep_sink(counting));
  EXPECT_EQ(count, spec->dependency_bound({2, 5, 0}));
}

// The executors' dependency buffers spill past their inline storage for
// exactly this spec; pin the support type's contract here too.
TEST(SmallVector, InlineAndHeapTransitions) {
  rdp::small_vector<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  const int* inline_data = v.data();
  for (int i = 4; i < 100; ++i) v.push_back(i);  // forces the heap spill
  EXPECT_EQ(v.size(), 100u);
  EXPECT_NE(v.data(), inline_data);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);

  v.clear();
  EXPECT_TRUE(v.empty());
  v.assign_default(7);
  EXPECT_EQ(v.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(v[i], 0);

  rdp::small_vector<double, 8> w;
  w.reserve(3);
  w.assign_default(8);  // exactly the inline capacity
  EXPECT_EQ(w.size(), 8u);
  w.push_back(1.5);  // first element past the inline buffer
  EXPECT_EQ(w.back(), 1.5);
  EXPECT_EQ(w.size(), 9u);
}

}  // namespace
