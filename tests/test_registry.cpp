// Registry-driven cross-backend equivalence: every variant the registry
// advertises must produce a bit-identical table to the serial 2-way R-DP
// backend, for every benchmark, across randomized sizes and base cases.
// This is the property the whole spec/executor refactor is built on — one
// recurrence spec, many lowerings, no numerical drift — and it runs under
// the TSan/UBSan presets (LABELS runtime).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dp/dp.hpp"
#include "forkjoin/worker_pool.hpp"
#include "support/rng.hpp"

namespace {

using namespace rdp;
using namespace rdp::dp;

/// The sweep: power-of-two sizes with every power-of-two base, so each
/// (n, base) pair exercises as many registry rows as possible (rway:r4
/// joins whenever n/base is a power of 4).
struct sweep_point {
  std::size_t n, base;
};

std::vector<sweep_point> sweep_points() {
  std::vector<sweep_point> pts;
  for (std::size_t n : {16u, 32u, 128u})
    for (std::size_t base = 4; base <= n; base *= 2)
      pts.push_back({n, base});
  return pts;
}

run_options options_for(std::size_t base, forkjoin::worker_pool& pool) {
  run_options opts;
  opts.base = base;
  opts.workers = 3;  // deliberately != tile counts, to shake out races
  opts.pool = &pool;
  return opts;
}

/// Runs every non-serial variant of `bm` at one sweep point and compares
/// the produced table against the serial run, bit for bit.
template <class Table, class Reset>
void check_point(benchmark_id bm, const problem_ref& prob,
                 const run_options& opts, Table& table, const Reset& reset,
                 std::size_t min_ran = 15) {
  const std::size_t n = problem_size(prob);
  const variant* serial = find_variant(bm, "serial");
  ASSERT_NE(serial, nullptr);
  ASSERT_TRUE(serial->supports(n, opts.base));
  reset();
  serial->run(*serial, prob, opts);
  const Table expected = table;

  std::size_t ran = 0;
  for (const variant* v : variants_for(bm)) {
    if (v == serial || !v->supports(n, opts.base)) continue;
    reset();
    const run_outcome outcome = v->run(*v, prob, opts);
    EXPECT_EQ(table, expected)
        << to_string(bm) << " × " << v->label << " diverged at n=" << n
        << ", base=" << opts.base;
    if (outcome.used_dataflow) {
      // Data-flow rows must have actually built a CnC graph.
      EXPECT_GT(outcome.info.stats.steps_executed, 0u) << v->label;
    }
    if (v->backend == backend_kind::sim) {
      // sim rows fill the table via the serial reference (checked above)
      // and must carry a non-trivial discrete-event prediction.
      EXPECT_TRUE(outcome.simulated) << v->label;
      EXPECT_GT(outcome.sim_seconds, 0.0) << v->label;
      EXPECT_GT(outcome.sim_base_tasks, 0u) << v->label;
    } else {
      EXPECT_FALSE(outcome.simulated) << v->label;
    }
    ++ran;
  }
  // forkjoin + tiled + 6 dataflow modes + rway:r2 + prepared +
  // prepared:batched always apply on a power-of-two sweep point (11 rows
  // past serial); GE/SW/FW add their 4 sim modes; rway:r4 joins whenever
  // n/base is a power of 4.
  EXPECT_GE(ran, min_ran) << "registry lost variants at n=" << n
                          << ", base=" << opts.base;
}

TEST(RegistryShape, AdvertisesEveryBackendPerBenchmark) {
  for (benchmark_id bm : {benchmark_id::ge, benchmark_id::sw,
                          benchmark_id::fw}) {
    const auto rows = variants_for(bm);
    ASSERT_EQ(rows.size(), 17u) << to_string(bm);
    // Labels resolve back to their own row, and are unique per benchmark.
    for (const variant* v : rows)
      EXPECT_EQ(find_variant(bm, v->label), v) << v->label;
  }
  // The variable-arity benchmarks carry every real backend but no sim:*
  // series (the simulator's cost model only covers the paper's figures).
  for (benchmark_id bm : {benchmark_id::lcs, benchmark_id::paren}) {
    const auto rows = variants_for(bm);
    ASSERT_EQ(rows.size(), 13u) << to_string(bm);
    for (const variant* v : rows) {
      EXPECT_EQ(find_variant(bm, v->label), v) << v->label;
      EXPECT_NE(v->backend, backend_kind::sim) << v->label;
    }
  }
  EXPECT_EQ(registry().size(), 77u);
  EXPECT_EQ(find_variant(benchmark_id::ge, "no-such-backend"), nullptr);
  EXPECT_NE(impl_help().find("dataflow:tuner"), std::string::npos);
  EXPECT_NE(impl_help().find("dataflow:batched"), std::string::npos);
  EXPECT_NE(impl_help().find("dataflow:sharded"), std::string::npos);
  EXPECT_NE(impl_help().find("prepared:batched"), std::string::npos);
  EXPECT_NE(impl_help().find("sim:omp"), std::string::npos);
}

TEST(RegistryEquivalence, GeAllVariantsMatchSerial) {
  forkjoin::worker_pool pool(3);
  xoshiro256 gen(42);
  for (const sweep_point pt : sweep_points()) {
    auto input = make_diag_dominant(pt.n, gen.next());
    auto m = input;
    check_point(benchmark_id::ge, ge_problem(m),
                options_for(pt.base, pool), m, [&] { m = input; });
  }
}

TEST(RegistryEquivalence, SwAllVariantsMatchSerial) {
  forkjoin::worker_pool pool(3);
  for (const sweep_point pt : sweep_points()) {
    const auto a = make_dna(pt.n, 7 + pt.n);
    const auto b = make_dna(pt.n, 8 + pt.base);
    const sw_params p;
    matrix<std::int32_t> s(pt.n + 1, pt.n + 1, 0);
    check_point(benchmark_id::sw, sw_problem(s, a, b, p),
                options_for(pt.base, pool), s, [&] {
                  s = matrix<std::int32_t>(pt.n + 1, pt.n + 1, 0);
                });
  }
}

TEST(RegistryEquivalence, FwAllVariantsMatchSerial) {
  forkjoin::worker_pool pool(3);
  for (const sweep_point pt : sweep_points()) {
    auto input = make_digraph(pt.n, 0.3, 5 + pt.base, 1e9);
    for (std::size_t i = 0; i < input.size(); ++i)
      input.data()[i] = static_cast<double>(
          static_cast<long long>(input.data()[i]));
    auto m = input;
    check_point(benchmark_id::fw, fw_problem(m),
                options_for(pt.base, pool), m, [&] { m = input; });
  }
}

TEST(RegistryEquivalence, LcsAllVariantsMatchSerial) {
  forkjoin::worker_pool pool(3);
  for (const sweep_point pt : sweep_points()) {
    const auto a = make_dna(pt.n, 11 + pt.n);
    const auto b = make_dna(pt.n, 13 + pt.base);
    matrix<std::int32_t> s(pt.n + 1, pt.n + 1, 0);
    check_point(benchmark_id::lcs, lcs_problem(s, a, b),
                options_for(pt.base, pool), s,
                [&] { s = matrix<std::int32_t>(pt.n + 1, pt.n + 1, 0); },
                /*min_ran=*/11);
  }
}

TEST(RegistryEquivalence, ParenAllVariantsMatchSerial) {
  forkjoin::worker_pool pool(3);
  xoshiro256 gen(17);
  for (const sweep_point pt : sweep_points()) {
    // Integer-valued chain dimensions keep every candidate cost exact, but
    // bit-exactness does not depend on it: min over a fixed candidate set
    // is evaluation-order-free.
    std::vector<double> dims(pt.n + 1);
    for (double& d : dims) d = static_cast<double>(1 + gen.next() % 64);
    matrix<double> c(pt.n, pt.n, 0.0);
    check_point(benchmark_id::paren, paren_problem(c, dims),
                options_for(pt.base, pool), c,
                [&] { c = matrix<double>(pt.n, pt.n, 0.0); },
                /*min_ran=*/11);
  }
}

}  // namespace
