// Tests for the scheduler watchdog (obs/watchdog): stall detection, busy
// gating, re-arming, dump rendering — and the acceptance path from ISSUE.md:
// a live-locked CnC graph (poll-and-requeue, no data progress) must produce
// an actionable stall dump through wait()'s automatic watchdog instead of
// hanging. Periods are tens of milliseconds so the whole file stays fast;
// every timing assertion polls against a generous deadline rather than
// assuming the scheduler runs the watchdog thread promptly.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "cnc/cnc.hpp"
#include "obs/watchdog.hpp"

namespace {

using namespace std::chrono_literals;
using rdp::obs::watchdog;

/// Spin until `pred` holds or `deadline` elapses; returns pred().
template <class Pred>
bool eventually(Pred pred, std::chrono::milliseconds deadline = 2000ms) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > until) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

/// Thread-safe accumulator for on_stall dumps.
struct dump_log {
  std::mutex m;
  std::vector<std::string> dumps;
  void operator()(const std::string& d) {
    std::scoped_lock lock(m);
    dumps.push_back(d);
  }
  std::size_t size() {
    std::scoped_lock lock(m);
    return dumps.size();
  }
  std::string joined() {
    std::scoped_lock lock(m);
    std::string all;
    for (const std::string& d : dumps) all += d;
    return all;
  }
};

// ---- unit: stall detection -------------------------------------------------

TEST(Watchdog, FlatProgressWhileBusyIsAStall) {
  std::atomic<std::uint64_t> progress{7};
  watchdog wd;
  wd.add_progress("work", [&] { return progress.load(); });
  wd.add_gauge("depth", [] { return std::uint64_t{3}; });
  wd.set_busy([] { return true; });

  dump_log log;
  watchdog::config cfg;
  cfg.period = 15ms;
  cfg.stall_periods = 2;
  cfg.on_stall = std::ref(log);
  wd.start(cfg);

  ASSERT_TRUE(eventually([&] { return wd.stalls_detected() >= 1; }));
  wd.stop();

  EXPECT_EQ(wd.stalls_detected(), 1u);  // one dump per stall onset, not per tick
  ASSERT_EQ(log.size(), 1u);
  const std::string& dump = log.joined();
  EXPECT_NE(dump.find("=== rdp watchdog: STALL detected ==="),
            std::string::npos);
  EXPECT_NE(dump.find("progress work = 7"), std::string::npos);
  EXPECT_NE(dump.find("gauge depth = 3"), std::string::npos);
  EXPECT_NE(dump.find("=== end watchdog dump ==="), std::string::npos);
}

TEST(Watchdog, AdvancingProgressNeverStalls) {
  std::atomic<std::uint64_t> progress{0};
  watchdog wd;
  wd.add_progress("work", [&] { return progress.fetch_add(1); });
  wd.set_busy([] { return true; });

  dump_log log;
  watchdog::config cfg;
  cfg.period = 10ms;
  cfg.stall_periods = 2;
  cfg.on_stall = std::ref(log);
  wd.start(cfg);
  ASSERT_TRUE(eventually([&] { return wd.ticks() >= 10; }));
  wd.stop();

  EXPECT_EQ(wd.stalls_detected(), 0u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(Watchdog, IdleRuntimeIsNotAStall) {
  // Progress flat but busy() false: quiescent, not stuck.
  watchdog wd;
  wd.add_progress("work", [] { return std::uint64_t{0}; });
  wd.set_busy([] { return false; });

  dump_log log;
  watchdog::config cfg;
  cfg.period = 10ms;
  cfg.stall_periods = 2;
  cfg.on_stall = std::ref(log);
  wd.start(cfg);
  ASSERT_TRUE(eventually([&] { return wd.ticks() >= 8; }));
  wd.stop();

  EXPECT_EQ(wd.stalls_detected(), 0u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(Watchdog, RearmsAfterProgressResumes) {
  std::atomic<std::uint64_t> progress{0};
  std::atomic<bool> moving{false};
  watchdog wd;
  wd.add_progress("work", [&] {
    if (moving.load()) progress.fetch_add(1);
    return progress.load();
  });
  wd.set_busy([] { return true; });

  dump_log log;
  watchdog::config cfg;
  cfg.period = 15ms;
  cfg.stall_periods = 2;
  cfg.on_stall = std::ref(log);
  wd.start(cfg);

  // First stall, then progress resumes (re-arms), then a second stall.
  ASSERT_TRUE(eventually([&] { return wd.stalls_detected() >= 1; }));
  moving.store(true);
  ASSERT_TRUE(eventually([&] { return progress.load() >= 4; }));
  moving.store(false);
  ASSERT_TRUE(eventually([&] { return wd.stalls_detected() >= 2; }));
  wd.stop();

  EXPECT_GE(wd.stalls_detected(), 2u);
  EXPECT_GE(log.size(), 2u);
}

TEST(Watchdog, StopJoinsAndSurvivesRestart) {
  watchdog wd;
  wd.add_progress("p", [] { return std::uint64_t{0}; });
  wd.set_busy([] { return false; });
  watchdog::config cfg;
  cfg.period = 5ms;
  cfg.on_stall = [](const std::string&) {};
  wd.start(cfg);
  ASSERT_TRUE(eventually([&] { return wd.ticks() >= 2; }));
  wd.stop();
  const std::uint64_t t = wd.ticks();
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(wd.ticks(), t);  // really stopped
  wd.start(cfg);             // restart is allowed
  ASSERT_TRUE(eventually([&] { return wd.ticks() > t; }));
  wd.stop();
}

// ---- acceptance: live-locked CnC graph produces a dump through wait() ------
//
// The step polls for an item nobody has produced and respawns itself — the
// historical hang class wait() cannot diagnose by quiescence (steps keep
// executing, so the graph never quiesces; only *data* progress is flat).
// The watchdog's on_stall doubles as the rescue: it flips the release flag,
// the environment-visible producer finally puts the item, and wait()
// returns. A watchdog failure would turn this test into a timeout.

struct livelock_ctx;
struct livelock_step {
  int execute(int tag, livelock_ctx& ctx) const;
};
struct livelock_ctx : rdp::cnc::context<livelock_ctx> {
  rdp::cnc::step_collection<livelock_ctx, livelock_step, int> steps{
      *this, "poll"};
  rdp::cnc::tag_collection<int> tags{*this, "ctrl"};
  rdp::cnc::item_collection<int, int> data{*this, "data"};
  std::atomic<bool> release{false};
  livelock_ctx() : context(2) { tags.prescribe(steps); }
};
int livelock_step::execute(int tag, livelock_ctx& ctx) const {
  int v = 0;
  if (!ctx.data.try_get(tag, v)) {
    if (ctx.release.load(std::memory_order_acquire)) {
      ctx.data.put(tag, tag + 1);  // finally make data progress
      return 0;
    }
    ctx.steps.respawn(tag);  // poll-and-requeue livelock
    // Don't let two workers spin the requeue loop at full speed: the test
    // only needs the loop alive, not a hot core per worker.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return 0;
}

TEST(Watchdog, LivelockedCncWaitProducesStallDump) {
  livelock_ctx ctx;
  dump_log log;
  std::atomic<int> stalls{0};

  rdp::obs::watchdog::config cfg;
  cfg.period = 20ms;
  cfg.stall_periods = 2;  // ISSUE acceptance: dump within 2 periods of onset
  cfg.on_stall = [&](const std::string& dump) {
    log(dump);
    stalls.fetch_add(1);
    ctx.release.store(true, std::memory_order_release);
  };
  ctx.set_watchdog(cfg);

  ctx.tags.put(3);
  ctx.wait();  // returns only because the stall dump released the loop

  EXPECT_GE(stalls.load(), 1);
  int v = 0;
  EXPECT_TRUE(ctx.data.try_get(3, v));
  EXPECT_EQ(v, 4);
  EXPECT_GT(ctx.stats().steps_requeued, 0u);  // it really did livelock

  const std::string dump = log.joined();
  EXPECT_NE(dump.find("=== rdp watchdog: STALL detected ==="),
            std::string::npos);
  // The context's dump section made it into the watchdog dump.
  EXPECT_NE(dump.find("context: active="), std::string::npos);
  EXPECT_NE(dump.find("pool: ready~"), std::string::npos);
  EXPECT_NE(dump.find("parked step instances:"), std::string::npos);
}

TEST(Watchdog, HealthyCncWaitNeverDumps) {
  livelock_ctx ctx;
  ctx.release.store(true);  // step produces immediately: no livelock
  std::atomic<int> stalls{0};
  rdp::obs::watchdog::config cfg;
  cfg.period = 10ms;
  cfg.on_stall = [&](const std::string&) { stalls.fetch_add(1); };
  ctx.set_watchdog(cfg);
  ctx.tags.put(1);
  ctx.wait();
  EXPECT_EQ(stalls.load(), 0);
}

}  // namespace
