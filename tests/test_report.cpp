// Tests for structured run reports (obs/report): JSON round-trips, schema
// guards, file I/O, and the noise-aware comparison the CI perf gate rests
// on. Compare inputs are synthetic reports with hand-chosen wall times, so
// every verdict is checked against an arithmetic expectation rather than a
// second run of the library.
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/report.hpp"
#include "support/json.hpp"

namespace {

using namespace rdp::obs;

metric_sample make_counter(std::string name, std::uint64_t v) {
  metric_sample m;
  m.name = std::move(name);
  m.kind = metric_kind::counter;
  m.value = v;
  return m;
}

metric_sample make_gauge(std::string name, std::int64_t v) {
  metric_sample m;
  m.name = std::move(name);
  m.kind = metric_kind::gauge;
  m.gauge_value = v;
  return m;
}

/// Histogram sample with `count` observations of one value (its mean is the
/// bucket midpoint of `value` — exact for values below 16).
metric_sample make_hist(std::string name, std::uint64_t value,
                        std::uint64_t count) {
  metric_sample m;
  m.name = std::move(name);
  m.kind = metric_kind::histogram;
  m.hist.buckets.assign(k_histogram_buckets, 0);
  m.hist.buckets[histogram_bucket_index(value)] = count;
  m.hist.max = value;
  m.hist.total = count;
  return m;
}

report_entry make_entry(std::string bench, std::string impl,
                        std::vector<double> wall) {
  report_entry e;
  e.benchmark = std::move(bench);
  e.impl = std::move(impl);
  e.n = 256;
  e.base = 16;
  e.workers = 4;
  e.wall_ms = std::move(wall);
  return e;
}

run_report make_report(std::vector<report_entry> entries) {
  run_report r;
  r.tool = "test";
  r.git_sha = "deadbeef";
  r.repetitions = 3;
  r.entries = std::move(entries);
  return r;
}

// ---- entry statistics ------------------------------------------------------

TEST(Report, EntryKeyAndWallStats) {
  report_entry e = make_entry("ge", "forkjoin", {10.0, 12.0, 14.0});
  EXPECT_EQ(e.key(), "ge|forkjoin|256|16");
  EXPECT_DOUBLE_EQ(e.wall_mean_ms(), 12.0);
  // Sample stdev of {10,12,14} is 2; CV = 2/12.
  EXPECT_NEAR(e.wall_cv(), 2.0 / 12.0, 1e-12);

  report_entry single = make_entry("ge", "serial", {5.0});
  EXPECT_DOUBLE_EQ(single.wall_cv(), 0.0);
  report_entry empty = make_entry("ge", "serial", {});
  EXPECT_DOUBLE_EQ(empty.wall_mean_ms(), 0.0);
  EXPECT_DOUBLE_EQ(empty.wall_min_ms(), 0.0);
  EXPECT_DOUBLE_EQ(e.wall_min_ms(), 10.0);
}

// A scheduler burst that inflates one repetition dominates the mean but not
// the minimum: --stat=min judges the undisturbed repetitions on each side.
TEST(Report, MinStatIgnoresDisturbedRepetitions) {
  const run_report base = make_report({make_entry("ge", "forkjoin",
                                                  {10.0, 12.0})});
  // One of the candidate's repetitions absorbed ~5x of interference.
  const run_report cand = make_report({make_entry("ge", "forkjoin",
                                                  {10.5, 50.0})});
  compare_options opts;
  opts.noise_k = 0.0;  // pin threshold to tol: the stat is what's under test
  opts.tol = 0.08;

  const compare_result mean_based = compare_reports(base, cand, opts);
  ASSERT_EQ(mean_based.deltas.size(), 1u);
  EXPECT_EQ(mean_based.deltas[0].verdict, compare_verdict::regression);

  opts.use_min_wall = true;
  const compare_result min_based = compare_reports(base, cand, opts);
  ASSERT_EQ(min_based.deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(min_based.deltas[0].baseline, 10.0);
  EXPECT_DOUBLE_EQ(min_based.deltas[0].candidate, 10.5);
  EXPECT_EQ(min_based.deltas[0].verdict, compare_verdict::ok);

  // A real slowdown still shows in every repetition, min included.
  const run_report slow = make_report({make_entry("ge", "forkjoin",
                                                  {13.0, 13.5})});
  const compare_result real_regression = compare_reports(base, slow, opts);
  ASSERT_EQ(real_regression.deltas.size(), 1u);
  EXPECT_EQ(real_regression.deltas[0].verdict, compare_verdict::regression);
}

// ---- serialisation ---------------------------------------------------------

TEST(Report, JsonRoundTripPreservesEverything) {
  report_entry e = make_entry("sw", "dataflow:tuner", {1.5, 2.5});
  e.trace_dropped = 42;
  e.metrics.push_back(make_counter("cnc.items_put", 1000));
  e.metrics.push_back(make_gauge("cnc.items_live", -3));
  e.metrics.push_back(make_hist("cnc.step_ns", 100, 64));
  e.has_pmu = true;
  e.pmu.backend = "hardware";
  e.pmu.cycles = 123456;
  e.pmu.cycles_valid = true;
  e.pmu.llc_misses = 99;
  e.pmu.llc_valid = true;
  // instructions/l1d/task_clock stay invalid: they must not round-trip.

  const run_report r = make_report({e});
  const run_report back = report_from_json(report_to_json(r));

  EXPECT_EQ(back.schema, k_report_schema);
  EXPECT_EQ(back.version, k_report_version);
  EXPECT_EQ(back.tool, "test");
  EXPECT_EQ(back.git_sha, "deadbeef");
  EXPECT_EQ(back.repetitions, 3u);
  ASSERT_EQ(back.entries.size(), 1u);
  const report_entry& b = back.entries[0];
  EXPECT_EQ(b.key(), e.key());
  EXPECT_EQ(b.workers, 4u);
  ASSERT_EQ(b.wall_ms.size(), 2u);
  EXPECT_DOUBLE_EQ(b.wall_ms[0], 1.5);
  EXPECT_DOUBLE_EQ(b.wall_ms[1], 2.5);
  EXPECT_EQ(b.trace_dropped, 42u);

  ASSERT_EQ(b.metrics.size(), 3u);  // keyed object: sorted by name
  bool saw_c = false, saw_g = false, saw_h = false;
  for (const metric_sample& m : b.metrics) {
    if (m.name == "cnc.items_put") {
      saw_c = true;
      EXPECT_EQ(m.kind, metric_kind::counter);
      EXPECT_EQ(m.value, 1000u);
    } else if (m.name == "cnc.items_live") {
      saw_g = true;
      EXPECT_EQ(m.kind, metric_kind::gauge);
      EXPECT_EQ(m.gauge_value, -3);
    } else if (m.name == "cnc.step_ns") {
      saw_h = true;
      EXPECT_EQ(m.kind, metric_kind::histogram);
      EXPECT_EQ(m.hist.total, 64u);
      EXPECT_EQ(m.hist.max, 100u);
      // Buckets don't round-trip; the parsed mean does (bucket mid of 100).
      EXPECT_NEAR(m.parsed_hist_mean, 101.0, 1e-9);
      EXPECT_NEAR(m.parsed_p99, 101.0, 1e-9);
    }
  }
  EXPECT_TRUE(saw_c && saw_g && saw_h);

  EXPECT_TRUE(b.has_pmu);
  EXPECT_EQ(b.pmu.backend, "hardware");
  EXPECT_TRUE(b.pmu.cycles_valid);
  EXPECT_EQ(b.pmu.cycles, 123456u);
  EXPECT_TRUE(b.pmu.llc_valid);
  EXPECT_EQ(b.pmu.llc_misses, 99u);
  EXPECT_FALSE(b.pmu.instructions_valid);
  EXPECT_FALSE(b.pmu.l1d_valid);
  EXPECT_FALSE(b.pmu.task_clock_valid);
}

TEST(Report, RejectsForeignSchemaAndNewerVersion) {
  EXPECT_THROW(report_from_json(rdp::json::parse(
                   R"({"schema":"not-a-report","version":1,"entries":[]})")),
               std::runtime_error);
  EXPECT_THROW(
      report_from_json(rdp::json::parse(
          R"({"schema":"rdp-run-report","version":99,"entries":[]})")),
      std::runtime_error);
  // Older/equal versions parse (forward-written files stay readable).
  const run_report ok = report_from_json(rdp::json::parse(
      R"({"schema":"rdp-run-report","version":1,"entries":[]})"));
  EXPECT_TRUE(ok.entries.empty());
  EXPECT_THROW(report_from_json(rdp::json::parse(R"({"version":1})")),
               std::runtime_error);  // schema field is mandatory
}

TEST(Report, FileRoundTripAndIoErrors) {
  const std::string path = ::testing::TempDir() + "/rdp_report_test.json";
  run_report r = make_report({make_entry("fw", "serial", {3.0})});
  write_report_file(path, r);
  const run_report back = read_report_file(path);
  ASSERT_EQ(back.entries.size(), 1u);
  EXPECT_EQ(back.entries[0].key(), "fw|serial|256|16");

  EXPECT_THROW(write_report_file("/nonexistent-dir/x/y.json", r),
               std::runtime_error);
  EXPECT_THROW(read_report_file("/nonexistent-dir/x/y.json"),
               std::runtime_error);
}

// ---- comparison ------------------------------------------------------------

TEST(ReportCompare, IdenticalReportsAreClean) {
  const run_report r = make_report({make_entry("ge", "forkjoin", {10, 10, 10}),
                                    make_entry("sw", "tiled", {5, 5, 5})});
  const compare_result res = compare_reports(r, r, compare_options{});
  EXPECT_EQ(res.regressions, 0);
  EXPECT_EQ(res.improvements, 0);
  EXPECT_EQ(res.deltas.size(), 2u);
  EXPECT_EQ(res.exit_code(), 0);
}

TEST(ReportCompare, TwentyPercentSlowdownRegressesAtDefaultTolerance) {
  const run_report base = make_report({make_entry("ge", "forkjoin", {10, 10})});
  const run_report cand = make_report({make_entry("ge", "forkjoin", {12, 12})});
  compare_options opts;  // tol 0.08, zero CV on both sides
  const compare_result res = compare_reports(base, cand, opts);
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_EQ(res.deltas[0].verdict, compare_verdict::regression);
  EXPECT_NEAR(res.deltas[0].ratio, 1.2, 1e-12);
  EXPECT_NEAR(res.deltas[0].threshold, 0.08, 1e-12);
  EXPECT_EQ(res.exit_code(), 1);
}

TEST(ReportCompare, NoisyRepetitionsWidenTheThreshold) {
  // Baseline CV of {8, 12} is sqrt(8)/10 ≈ 0.283; with noise_k = 3 the
  // threshold grows to ≈ 0.849, so a +20% mean shift is not a regression.
  const run_report base = make_report({make_entry("ge", "forkjoin", {8, 12})});
  const run_report cand = make_report({make_entry("ge", "forkjoin", {12, 12})});
  const compare_result res = compare_reports(base, cand, compare_options{});
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_EQ(res.deltas[0].verdict, compare_verdict::ok);
  EXPECT_NEAR(res.deltas[0].threshold, 3.0 * std::sqrt(8.0) / 10.0, 1e-9);
  EXPECT_EQ(res.exit_code(), 0);
}

TEST(ReportCompare, LargeSpeedupCountsAsImprovement) {
  const run_report base = make_report({make_entry("ge", "forkjoin", {10, 10})});
  const run_report cand = make_report({make_entry("ge", "forkjoin", {8, 8})});
  const compare_result res = compare_reports(base, cand, compare_options{});
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_EQ(res.deltas[0].verdict, compare_verdict::improvement);
  EXPECT_EQ(res.improvements, 1);
  EXPECT_EQ(res.exit_code(), 0);  // improvements never fail the gate
}

TEST(ReportCompare, SubMillisecondEntriesAreSkippedAsNoise) {
  const run_report base =
      make_report({make_entry("ge", "forkjoin", {0.01, 0.01})});
  const run_report cand =
      make_report({make_entry("ge", "forkjoin", {0.04, 0.04})});
  const compare_result res = compare_reports(base, cand, compare_options{});
  EXPECT_TRUE(res.deltas.empty());  // 4x slower but below min_wall_ms: noise
  EXPECT_EQ(res.regressions, 0);
  ASSERT_EQ(res.notes.size(), 1u);
  EXPECT_NE(res.notes[0].find("sub-threshold"), std::string::npos);
}

// A baseline entry missing from the candidate fails the gate (a candidate
// that silently dropped entries could otherwise narrow the gate to
// nothing); entries only the candidate has stay informational notes.
TEST(ReportCompare, MissingBaselineEntriesAreFailures) {
  const run_report base = make_report({make_entry("ge", "forkjoin", {10}),
                                       make_entry("ge", "old-impl", {10})});
  const run_report cand = make_report({make_entry("ge", "forkjoin", {10}),
                                       make_entry("ge", "new-impl", {10})});
  const compare_result res = compare_reports(base, cand, compare_options{});
  EXPECT_EQ(res.deltas.size(), 1u);
  EXPECT_EQ(res.regressions, 0);
  EXPECT_EQ(res.missing, 1);
  EXPECT_EQ(res.exit_code(), 1);  // old-impl vanished: gate must fail
  bool base_missing = false, cand_only = false;
  for (const std::string& n : res.notes) {
    if (n.find("MISSING") != std::string::npos &&
        n.find("old-impl") != std::string::npos)
      base_missing = true;
    if (n.find("candidate-only") != std::string::npos &&
        n.find("new-impl") != std::string::npos)
      cand_only = true;
  }
  EXPECT_TRUE(base_missing && cand_only);
}

// Candidate-only entries alone never fail: adding benchmarks is not a
// regression.
TEST(ReportCompare, CandidateOnlyEntriesStayNotes) {
  const run_report base = make_report({make_entry("ge", "forkjoin", {10})});
  const run_report cand = make_report({make_entry("ge", "forkjoin", {10}),
                                       make_entry("ge", "new-impl", {10})});
  const compare_result res = compare_reports(base, cand, compare_options{});
  EXPECT_EQ(res.missing, 0);
  EXPECT_EQ(res.exit_code(), 0);
}

TEST(ReportCompare, HistogramMeanRegressionIsCaught) {
  report_entry be = make_entry("sw", "dataflow", {10, 10});
  be.metrics.push_back(make_hist("cnc.step_ns", 100, 64));
  report_entry ce = make_entry("sw", "dataflow", {10, 10});
  // Bucket mid of 130 is 131 vs 101 for 100: a ~30% step-latency blowup
  // that the (identical) wall clocks alone would miss.
  ce.metrics.push_back(make_hist("cnc.step_ns", 130, 64));
  const compare_result res = compare_reports(
      make_report({be}), make_report({ce}), compare_options{});
  ASSERT_EQ(res.deltas.size(), 2u);  // wall + histogram row
  EXPECT_EQ(res.deltas[0].verdict, compare_verdict::ok);
  EXPECT_EQ(res.deltas[1].key, "sw|dataflow|256|16:cnc.step_ns");
  EXPECT_EQ(res.deltas[1].verdict, compare_verdict::regression);
  EXPECT_NEAR(res.deltas[1].ratio, 131.0 / 101.0, 1e-9);
  EXPECT_EQ(res.exit_code(), 1);

  // Below min_hist_count the same shift is ignored (sampled recorders).
  report_entry be2 = be;
  be2.metrics[0] = make_hist("cnc.step_ns", 100, 8);
  report_entry ce2 = ce;
  ce2.metrics[0] = make_hist("cnc.step_ns", 130, 8);
  const compare_result res2 = compare_reports(
      make_report({be2}), make_report({ce2}), compare_options{});
  EXPECT_EQ(res2.deltas.size(), 1u);  // wall row only
  EXPECT_EQ(res2.regressions, 0);

  // --no-histograms drops the row as well.
  compare_options no_hist;
  no_hist.compare_histograms = false;
  const compare_result res3 =
      compare_reports(make_report({be}), make_report({ce}), no_hist);
  EXPECT_EQ(res3.deltas.size(), 1u);
  EXPECT_EQ(res3.regressions, 0);
}

TEST(ReportCompare, HistogramComparisonWorksOnParsedReports) {
  // Round-trip through JSON first: the candidate carries parsed_hist_mean,
  // not buckets, and compare must use it.
  report_entry be = make_entry("sw", "dataflow", {10, 10});
  be.metrics.push_back(make_hist("cnc.step_ns", 100, 64));
  report_entry ce = make_entry("sw", "dataflow", {10, 10});
  ce.metrics.push_back(make_hist("cnc.step_ns", 130, 64));
  const run_report base = report_from_json(report_to_json(make_report({be})));
  const run_report cand = report_from_json(report_to_json(make_report({ce})));
  const compare_result res = compare_reports(base, cand, compare_options{});
  ASSERT_EQ(res.deltas.size(), 2u);
  EXPECT_EQ(res.deltas[1].verdict, compare_verdict::regression);
  EXPECT_NEAR(res.deltas[1].ratio, 131.0 / 101.0, 1e-9);
}

TEST(ReportCompare, NormalizeComparesRatiosAgainstAnchor) {
  // Machine B is uniformly 2x slower — raw comparison would scream; ratios
  // against serial cancel it. The forkjoin/serial ratio is 0.5 in both.
  const run_report base = make_report({make_entry("ge", "serial", {10, 10}),
                                       make_entry("ge", "forkjoin", {5, 5})});
  const run_report cand = make_report({make_entry("ge", "serial", {20, 20}),
                                       make_entry("ge", "forkjoin", {10, 10})});
  compare_options opts;
  opts.normalize = "serial";
  const compare_result res = compare_reports(base, cand, opts);
  // The anchor itself is skipped; one delta for forkjoin.
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_NEAR(res.deltas[0].baseline, 0.5, 1e-12);
  EXPECT_NEAR(res.deltas[0].candidate, 0.5, 1e-12);
  EXPECT_EQ(res.deltas[0].verdict, compare_verdict::ok);
  EXPECT_EQ(res.exit_code(), 0);

  // Same machines, but forkjoin loses its scaling: ratio 0.5 -> 0.9.
  const run_report bad = make_report({make_entry("ge", "serial", {10, 10}),
                                      make_entry("ge", "forkjoin", {9, 9})});
  const compare_result res2 = compare_reports(base, bad, opts);
  ASSERT_EQ(res2.deltas.size(), 1u);
  EXPECT_EQ(res2.deltas[0].verdict, compare_verdict::regression);
  EXPECT_EQ(res2.exit_code(), 1);
}

TEST(ReportCompare, NormalizeWithoutAnchorSkipsWithNote) {
  const run_report base = make_report({make_entry("ge", "forkjoin", {5, 5})});
  const run_report cand = make_report({make_entry("ge", "forkjoin", {5, 5})});
  compare_options opts;
  opts.normalize = "serial";
  const compare_result res = compare_reports(base, cand, opts);
  EXPECT_TRUE(res.deltas.empty());
  ASSERT_EQ(res.notes.size(), 1u);
  EXPECT_NE(res.notes[0].find("no 'serial' reference"), std::string::npos);
  EXPECT_EQ(res.exit_code(), 0);
}

}  // namespace
