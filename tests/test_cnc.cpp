// Tests for the data-flow (CnC) runtime: graph wiring, blocking gets with
// abort-and-re-execute, dynamic single assignment, deadlock detection, the
// pre-scheduling tuner, tag memoisation, and environment interaction.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "cnc/cnc.hpp"

namespace {

using namespace rdp::cnc;

// ---------------------------------------------------------------- hello ----

struct hello_ctx;
struct hello_step {
  int execute(int tag, hello_ctx& ctx) const;
};
struct hello_ctx : context<hello_ctx> {
  step_collection<hello_ctx, hello_step, int> steps{*this, "hello"};
  tag_collection<int> tags{*this, "ctrl"};
  item_collection<int, double> data{*this, "data"};
  hello_ctx() : context(2) { tags.prescribe(steps); }
};
int hello_step::execute(int tag, hello_ctx& ctx) const {
  ctx.data.put(tag, tag * 2.5);
  return 0;
}

TEST(Cnc, HelloGraphProducesItem) {
  hello_ctx ctx;
  ctx.tags.put(4);
  ctx.wait();
  double v = 0;
  ctx.data.get(4, v);
  EXPECT_DOUBLE_EQ(v, 10.0);
  EXPECT_EQ(ctx.stats().steps_executed, 1u);
}

TEST(Cnc, EnvironmentBlockingGetHelpsUntilAvailable) {
  hello_ctx ctx;
  ctx.tags.put(7);
  // No wait(): the environment get itself must drive execution to completion.
  double v = 0;
  ctx.data.get(7, v);
  EXPECT_DOUBLE_EQ(v, 17.5);
  ctx.wait();
}

TEST(Cnc, TryGetDoesNotBlock) {
  hello_ctx ctx;
  double v = 0;
  EXPECT_FALSE(ctx.data.try_get(1, v));
  ctx.tags.put(1);
  ctx.wait();
  EXPECT_TRUE(ctx.data.try_get(1, v));
  EXPECT_DOUBLE_EQ(v, 2.5);
}

// ---------------------------------------------------------------- chain ----
// Step k (k > 0) consumes item k-1 and produces item k; step 0 seeds.
// Putting tags in REVERSE order forces every step except the seed to abort
// on an unmet get at least once under the Native (spawn-immediately) policy.

struct chain_ctx;
struct chain_step {
  int execute(int tag, chain_ctx& ctx) const;
  void depends(int tag, chain_ctx& ctx, dependency_collector& dc) const;
};
struct chain_ctx : context<chain_ctx> {
  step_collection<chain_ctx, chain_step, int> steps;
  tag_collection<int> tags{*this, "ctrl"};
  item_collection<int, std::uint64_t> values{*this, "values"};
  explicit chain_ctx(schedule_policy policy)
      : context(2), steps(*this, "chain", chain_step{}, policy) {
    tags.prescribe(steps);
  }
};
int chain_step::execute(int tag, chain_ctx& ctx) const {
  if (tag == 0) {
    ctx.values.put(0, 1);
    return 0;
  }
  std::uint64_t prev = 0;
  ctx.values.get(tag - 1, prev);  // blocking data dependency
  ctx.values.put(tag, prev + static_cast<std::uint64_t>(tag));
  return 0;
}
void chain_step::depends(int tag, chain_ctx& ctx,
                         dependency_collector& dc) const {
  if (tag > 0) dc.require(ctx.values, tag - 1);
}

TEST(Cnc, RearmedContextRunsASecondWave) {
  // The batch server's re-arm cycle: after quiescence, clearing the
  // collections and re-arming the context must allow the SAME tags again —
  // DSA and tag memoisation restart from scratch, stats are per-wave.
  hello_ctx ctx;
  ctx.tags.put(4);
  ctx.wait();
  double v = 0;
  ctx.data.get(4, v);
  EXPECT_DOUBLE_EQ(v, 10.0);
  EXPECT_EQ(ctx.stats().steps_executed, 1u);

  ctx.data.clear();
  ctx.tags.clear();
  ctx.rearm();
  ctx.reset_stats();
  EXPECT_EQ(ctx.data.size(), 0u);

  ctx.tags.put(4);  // duplicate of wave 1: only legal because of the clear
  ctx.wait();
  v = 0;
  ctx.data.get(4, v);
  EXPECT_DOUBLE_EQ(v, 10.0);
  EXPECT_EQ(ctx.stats().steps_executed, 1u);  // wave-local, not cumulative
}

TEST(Cnc, ChainWithRetriesComputesPrefixSums) {
  chain_ctx ctx(schedule_policy::spawn_immediately);
  constexpr int kN = 64;
  for (int i = kN - 1; i >= 0; --i) ctx.tags.put(i);  // worst-case order
  ctx.wait();
  std::uint64_t v = 0;
  ctx.values.get(kN - 1, v);
  // value(k) = 1 + sum_{i=1..k} i
  EXPECT_EQ(v, 1u + static_cast<std::uint64_t>(kN - 1) * kN / 2);
  const auto s = ctx.stats();
  EXPECT_EQ(s.steps_executed, static_cast<std::uint64_t>(kN));
  EXPECT_GT(s.gets_failed, 0u);   // reverse order must cause aborts
  EXPECT_EQ(s.steps_aborted, s.gets_failed);
}

TEST(Cnc, PrescheduleTunerAvoidsAllReexecutions) {
  chain_ctx ctx(schedule_policy::preschedule);
  constexpr int kN = 64;
  for (int i = kN - 1; i >= 0; --i) ctx.tags.put(i);
  ctx.wait();
  std::uint64_t v = 0;
  ctx.values.get(kN - 1, v);
  EXPECT_EQ(v, 1u + static_cast<std::uint64_t>(kN - 1) * kN / 2);
  const auto s = ctx.stats();
  EXPECT_EQ(s.steps_executed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.gets_failed, 0u);   // the whole point of the tuner
  EXPECT_EQ(s.steps_aborted, 0u);
  EXPECT_GT(s.preschedule_deferrals, 0u);
}

// ---------------------------------------------------------- single assign ----

TEST(Cnc, DuplicatePutFromEnvironmentThrows) {
  hello_ctx ctx;
  ctx.data.put(100, 1.0);
  EXPECT_THROW(ctx.data.put(100, 2.0), dsa_violation);
  double v = 0;
  ctx.data.get(100, v);
  EXPECT_DOUBLE_EQ(v, 1.0);  // original value preserved
}

struct dup_ctx;
struct dup_step {
  int execute(int tag, dup_ctx& ctx) const;
};
struct dup_ctx : context<dup_ctx> {
  step_collection<dup_ctx, dup_step, int> steps{*this, "dup"};
  tag_collection<int> tags{*this, "ctrl", /*memoize=*/false};
  item_collection<int, int> data{*this, "data"};
  dup_ctx() : context(2) { tags.prescribe(steps); }
};
int dup_step::execute(int, dup_ctx& ctx) const {
  ctx.data.put(0, 1);  // every instance writes the same key
  return 0;
}

TEST(Cnc, DuplicatePutFromStepSurfacesAtWait) {
  dup_ctx ctx;
  ctx.tags.put(1);
  ctx.tags.put(2);  // second instance violates single assignment
  EXPECT_THROW(ctx.wait(), dsa_violation);
}

// -------------------------------------------------------------- deadlock ----

struct stuck_ctx;
struct stuck_step {
  int execute(int tag, stuck_ctx& ctx) const;
};
struct stuck_ctx : context<stuck_ctx> {
  step_collection<stuck_ctx, stuck_step, int> steps{*this, "stuck"};
  tag_collection<int> tags{*this, "ctrl"};
  item_collection<int, int> data{*this, "data"};
  stuck_ctx() : context(2) { tags.prescribe(steps); }
};
int stuck_step::execute(int, stuck_ctx& ctx) const {
  int v = 0;
  ctx.data.get(12345, v);  // nobody ever produces this item
  return 0;
}

TEST(Cnc, QuiescedGraphWithParkedStepsReportsDeadlock) {
  stuck_ctx ctx;
  ctx.tags.put(0);
  EXPECT_THROW(ctx.wait(), unsatisfied_dependency);
  // The suspended instance is reclaimed by the context destructor (checked
  // implicitly by ASAN-less leak hygiene; here we just ensure no crash).
}

TEST(Cnc, DeadlockReportCountsParkedInstances) {
  stuck_ctx ctx;
  ctx.tags.put(0);
  ctx.tags.put(1);
  ctx.tags.put(2);
  try {
    ctx.wait();
    FAIL() << "expected unsatisfied_dependency";
  } catch (const unsatisfied_dependency& e) {
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos);
  }
}

// ------------------------------------------------------------ memoisation ----

struct count_ctx;
struct count_step {
  int execute(int tag, count_ctx& ctx) const;
};
struct count_ctx : context<count_ctx> {
  std::atomic<int> executions{0};
  step_collection<count_ctx, count_step, int> steps{*this, "count"};
  tag_collection<int> tags{*this, "ctrl"};  // memoising (default)
  count_ctx() : context(2) { tags.prescribe(steps); }
};
int count_step::execute(int, count_ctx& ctx) const {
  ctx.executions.fetch_add(1, std::memory_order_relaxed);
  return 0;
}

TEST(Cnc, TagCollectionMemoisesDuplicateTags) {
  count_ctx ctx;
  for (int rep = 0; rep < 5; ++rep) ctx.tags.put(3);
  ctx.tags.put(4);
  ctx.wait();
  EXPECT_EQ(ctx.executions.load(), 2);  // tags 3 and 4, once each
  EXPECT_EQ(ctx.stats().tags_put, 6u);
  EXPECT_EQ(ctx.stats().steps_prescribed, 2u);
}

// ------------------------------------------------- multiple prescriptions ----

struct multi_ctx;
struct step_a {
  int execute(int tag, multi_ctx& ctx) const;
};
struct step_b {
  int execute(int tag, multi_ctx& ctx) const;
};
struct multi_ctx : context<multi_ctx> {
  step_collection<multi_ctx, step_a, int> a{*this, "A"};
  step_collection<multi_ctx, step_b, int> b{*this, "B"};
  tag_collection<int> tags{*this, "ctrl"};
  item_collection<std::string, int> out{*this, "out"};
  multi_ctx() : context(2) {
    tags.prescribe(a);
    tags.prescribe(b);
  }
};
int step_a::execute(int tag, multi_ctx& ctx) const {
  ctx.out.put("a" + std::to_string(tag), tag);
  return 0;
}
int step_b::execute(int tag, multi_ctx& ctx) const {
  ctx.out.put("b" + std::to_string(tag), -tag);
  return 0;
}

TEST(Cnc, OneTagCollectionPrescribesTwoStepCollections) {
  multi_ctx ctx;
  ctx.tags.put(9);
  ctx.wait();
  int va = 0, vb = 0;
  ctx.out.get("a9", va);
  ctx.out.get("b9", vb);
  EXPECT_EQ(va, 9);
  EXPECT_EQ(vb, -9);
  EXPECT_EQ(ctx.tags.prescription_count(), 2u);
}

// ------------------------------------------------------------ user errors ----

struct throwing_ctx;
struct throwing_step {
  int execute(int tag, throwing_ctx& ctx) const;
};
struct throwing_ctx : context<throwing_ctx> {
  step_collection<throwing_ctx, throwing_step, int> steps{*this, "boom"};
  tag_collection<int> tags{*this, "ctrl"};
  throwing_ctx() : context(2) { tags.prescribe(steps); }
};
int throwing_step::execute(int tag, throwing_ctx&) const {
  if (tag == 13) throw std::runtime_error("unlucky tag");
  return 0;
}

TEST(Cnc, StepExceptionRethrownByWait) {
  throwing_ctx ctx;
  for (int i = 0; i < 20; ++i) ctx.tags.put(i);
  try {
    ctx.wait();
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "unlucky tag");
  }
}

// -------------------------------------------------------- diamond / fan-in ----
// d consumes the outputs of b and c, which both consume a's output: the
// canonical diamond. Under preschedule, d must defer until both are ready.

struct diamond_ctx;
struct diamond_step {
  int execute(char tag, diamond_ctx& ctx) const;
  void depends(char tag, diamond_ctx& ctx, dependency_collector& dc) const;
};
struct diamond_ctx : context<diamond_ctx> {
  step_collection<diamond_ctx, diamond_step, char> steps;
  tag_collection<char> tags{*this, "ctrl"};
  item_collection<char, int> data{*this, "data"};
  explicit diamond_ctx(schedule_policy p)
      : context(2), steps(*this, "diamond", diamond_step{}, p) {
    tags.prescribe(steps);
  }
};
int diamond_step::execute(char tag, diamond_ctx& ctx) const {
  int x = 0, y = 0;
  switch (tag) {
    case 'a':
      ctx.data.put('a', 1);
      break;
    case 'b':
      ctx.data.get('a', x);
      ctx.data.put('b', x + 10);
      break;
    case 'c':
      ctx.data.get('a', x);
      ctx.data.put('c', x + 100);
      break;
    case 'd':
      ctx.data.get('b', x);
      ctx.data.get('c', y);
      ctx.data.put('d', x + y);
      break;
    default:
      break;
  }
  return 0;
}
void diamond_step::depends(char tag, diamond_ctx& ctx,
                           dependency_collector& dc) const {
  switch (tag) {
    case 'b':
    case 'c':
      dc.require(ctx.data, 'a');
      break;
    case 'd':
      dc.require(ctx.data, 'b');
      dc.require(ctx.data, 'c');
      break;
    default:
      break;
  }
}

class CncDiamond : public ::testing::TestWithParam<schedule_policy> {};

TEST_P(CncDiamond, ComputesFanInUnderBothPolicies) {
  diamond_ctx ctx(GetParam());
  // Put sink first to maximise out-of-order pressure.
  ctx.tags.put('d');
  ctx.tags.put('c');
  ctx.tags.put('b');
  ctx.tags.put('a');
  ctx.wait();
  int v = 0;
  ctx.data.get('d', v);
  EXPECT_EQ(v, (1 + 10) + (1 + 100));
  if (GetParam() == schedule_policy::preschedule)
    EXPECT_EQ(ctx.stats().gets_failed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, CncDiamond,
                         ::testing::Values(schedule_policy::spawn_immediately,
                                           schedule_policy::preschedule));

// ------------------------------------------------------------- stress mix ----
// Many chains executed concurrently with interleaved tag order; validates
// waiter lists under contention.

struct grid_ctx;
struct grid_step {
  int execute(std::uint64_t tag, grid_ctx& ctx) const;
};
struct grid_ctx : context<grid_ctx> {
  static constexpr std::uint64_t kChains = 16, kLen = 32;
  step_collection<grid_ctx, grid_step, std::uint64_t> steps{*this, "grid"};
  tag_collection<std::uint64_t> tags{*this, "ctrl"};
  item_collection<std::uint64_t, std::uint64_t> cells{*this, "cells"};
  grid_ctx() : context(4) { tags.prescribe(steps); }
};
int grid_step::execute(std::uint64_t tag, grid_ctx& ctx) const {
  const std::uint64_t chain = tag / grid_ctx::kLen;
  const std::uint64_t pos = tag % grid_ctx::kLen;
  std::uint64_t prev = chain;  // seed value for pos == 0
  if (pos > 0) ctx.cells.get(tag - 1, prev);
  ctx.cells.put(tag, prev + 1);
  return 0;
}

TEST(Cnc, ManyConcurrentChainsUnderContention) {
  grid_ctx ctx;
  // Interleave chains, positions descending: maximal suspension pressure.
  for (std::uint64_t pos = grid_ctx::kLen; pos-- > 0;)
    for (std::uint64_t c = 0; c < grid_ctx::kChains; ++c)
      ctx.tags.put(c * grid_ctx::kLen + pos);
  ctx.wait();
  for (std::uint64_t c = 0; c < grid_ctx::kChains; ++c) {
    std::uint64_t v = 0;
    ctx.cells.get(c * grid_ctx::kLen + grid_ctx::kLen - 1, v);
    EXPECT_EQ(v, c + grid_ctx::kLen);
  }
  EXPECT_EQ(ctx.stats().steps_executed, grid_ctx::kChains * grid_ctx::kLen);
}

// ------------------------------------------------ get-count collection ----
// Items put with a get_count are erased after exactly that many successful
// blocking gets (Intel CnC's item garbage collection).

struct gc_ctx;
struct gc_step {
  int execute(int tag, gc_ctx& ctx) const;
  void depends(int tag, gc_ctx& ctx, dependency_collector& dc) const;
};
struct gc_ctx : context<gc_ctx> {
  step_collection<gc_ctx, gc_step, int> steps;
  tag_collection<int> tags{*this, "ctrl"};
  item_collection<int, int> data{*this, "data"};
  item_collection<int, int> out{*this, "out"};
  gc_ctx()
      : context(2),
        steps(*this, "gc", gc_step{}, schedule_policy::preschedule) {
    tags.prescribe(steps);
  }
};
int gc_step::execute(int tag, gc_ctx& ctx) const {
  int v = 0;
  ctx.data.get(0, v);  // shared input, consumed by every step
  ctx.out.put(tag, v + tag);
  return 0;
}
void gc_step::depends(int tag, gc_ctx& ctx, dependency_collector& dc) const {
  (void)tag;
  dc.require(ctx.data, 0);
}

TEST(Cnc, GetCountCollectsItemAfterLastConsumer) {
  gc_ctx ctx;
  constexpr int kConsumers = 8;
  ctx.data.put(0, 100, /*get_count=*/kConsumers);
  for (int t = 1; t <= kConsumers; ++t) ctx.tags.put(t);
  ctx.wait();
  // All consumers saw the value...
  int v = 0;
  ctx.out.get(kConsumers, v);
  EXPECT_EQ(v, 100 + kConsumers);
  // ...and the input item was reclaimed after the last get.
  EXPECT_FALSE(ctx.data.contains(0));
  EXPECT_EQ(ctx.data.size(), 0u);
}

TEST(Cnc, GetCountZeroMeansKeepForever) {
  gc_ctx ctx;
  ctx.data.put(0, 5);  // default: no collection
  for (int t = 1; t <= 4; ++t) ctx.tags.put(t);
  ctx.wait();
  EXPECT_TRUE(ctx.data.contains(0));
}

TEST(Cnc, TryGetNeverConsumesDeclaredGets) {
  // The nonblocking data-flow variant re-polls inputs it already saw every
  // time a respawned step runs again; that is only safe for get-count
  // accounting because try_get is count-neutral (exec/dataflow.cpp relies
  // on this — a counting poll would double-decrement and free items early).
  gc_ctx ctx;
  ctx.data.put(0, 42, /*get_count=*/2);
  int v = 0;
  for (int poll = 0; poll < 8; ++poll) {
    v = 0;
    EXPECT_TRUE(ctx.data.try_get(0, v));
    EXPECT_EQ(v, 42);
  }
  EXPECT_TRUE(ctx.data.contains(0));  // eight polls consumed nothing
  ctx.data.get(0, v);
  EXPECT_TRUE(ctx.data.contains(0));  // one declared get left
  ctx.data.get(0, v);
  EXPECT_FALSE(ctx.data.contains(0));  // the second counted get collects
  ctx.wait();
}

TEST(Cnc, EnvironmentGetsCountTowardsCollection) {
  gc_ctx ctx;
  ctx.data.put(0, 7, /*get_count=*/2);
  int v = 0;
  ctx.data.get(0, v);  // env consumption #1
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(ctx.data.contains(0));
  ctx.data.get(0, v);  // env consumption #2: last one
  EXPECT_FALSE(ctx.data.contains(0));
  ctx.wait();
}

// --------------------------------------------------- compute_on affinity ----
// Steps that define compute_on(tag, ctx) are pinned to the returned worker;
// affinity queues are not stealable, so the placement is exact.

struct affine_ctx;
struct affine_step {
  int execute(int tag, affine_ctx& ctx) const;
  int compute_on(int tag, affine_ctx& ctx) const;
};
struct affine_ctx : context<affine_ctx> {
  static constexpr unsigned kWorkers = 3;
  std::atomic<int> misplaced{0};
  std::atomic<int> executed{0};
  step_collection<affine_ctx, affine_step, int> steps{*this, "affine"};
  tag_collection<int> tags{*this, "ctrl"};
  affine_ctx() : context(kWorkers) { tags.prescribe(steps); }
};
int affine_step::compute_on(int tag, affine_ctx&) const {
  return tag % static_cast<int>(affine_ctx::kWorkers);
}
int affine_step::execute(int tag, affine_ctx& ctx) const {
  const int expected = tag % static_cast<int>(affine_ctx::kWorkers);
  if (rdp::forkjoin::worker_pool::current_worker_index() != expected)
    ctx.misplaced.fetch_add(1, std::memory_order_relaxed);
  ctx.executed.fetch_add(1, std::memory_order_relaxed);
  return 0;
}

TEST(Cnc, ComputeOnTunerPinsStepsToWorkers) {
  affine_ctx ctx;
  for (int t = 0; t < 120; ++t) ctx.tags.put(t);
  ctx.wait();
  EXPECT_EQ(ctx.executed.load(), 120);
  EXPECT_EQ(ctx.misplaced.load(), 0);
}

// ------------------------------------------------- non-blocking requeues ----
// A polling step that requeues itself until the environment publishes the
// item it needs — the §IV-B "non-blocking get" protocol in isolation.

struct poll_ctx;
struct poll_step {
  int execute(int tag, poll_ctx& ctx) const;
};
struct poll_ctx : context<poll_ctx> {
  step_collection<poll_ctx, poll_step, int> steps{*this, "poll"};
  tag_collection<int> tags{*this, "ctrl", /*memoize=*/false};
  item_collection<int, int> input{*this, "input"};
  item_collection<int, int> output{*this, "output"};
  poll_ctx() : context(2) { tags.prescribe(steps); }
};
int poll_step::execute(int tag, poll_ctx& ctx) const {
  int v = 0;
  if (!ctx.input.try_get(0, v)) {
    ctx.steps.respawn(tag);  // poll again later (FIFO path)
    return 0;
  }
  ctx.output.put(tag, v + 1);
  return 0;
}

TEST(Cnc, NonblockingRespawnPollsUntilItemAppears) {
  poll_ctx ctx;
  ctx.tags.put(7);
  // The step must spin through at least one requeue before the item
  // exists; wait for proof, then publish the item.
  while (ctx.stats().steps_requeued == 0) std::this_thread::yield();
  ctx.input.put(0, 41);
  ctx.wait();
  int v = 0;
  ctx.output.get(7, v);
  EXPECT_EQ(v, 42);
  const auto s = ctx.stats();
  EXPECT_GE(s.steps_requeued, 1u);
  EXPECT_EQ(s.steps_aborted, 0u);  // polling never parks
}

// ------------------------------------------------------ waiter stress ----
// Many producers and consumers hammering a handful of shared items from
// random tag orders: waiter lists and resume paths under real contention.

struct fanout_ctx;
struct fanout_step {
  int execute(int tag, fanout_ctx& ctx) const;
};
struct fanout_ctx : context<fanout_ctx> {
  static constexpr int kHubs = 4, kConsumersPerHub = 64;
  step_collection<fanout_ctx, fanout_step, int> steps{*this, "fan"};
  tag_collection<int> tags{*this, "ctrl"};
  item_collection<int, int> hubs{*this, "hubs"};
  item_collection<int, int> results{*this, "results"};
  fanout_ctx() : context(4) { tags.prescribe(steps); }
};
int fanout_step::execute(int tag, fanout_ctx& ctx) const {
  if (tag < fanout_ctx::kHubs) {  // producer steps
    ctx.hubs.put(tag, tag * 1000);
    return 0;
  }
  const int hub = tag % fanout_ctx::kHubs;  // consumer steps
  int v = 0;
  ctx.hubs.get(hub, v);
  ctx.results.put(tag, v + tag);
  return 0;
}

TEST(Cnc, ManyConsumersParkOnFewItems) {
  fanout_ctx ctx;
  const int total = fanout_ctx::kHubs * (fanout_ctx::kConsumersPerHub + 1);
  // Consumers first (they all park), producers last.
  for (int t = total - 1; t >= 0; --t) ctx.tags.put(t);
  ctx.wait();
  int v = 0;
  ctx.results.get(total - 1, v);
  const int hub = (total - 1) % fanout_ctx::kHubs;
  EXPECT_EQ(v, hub * 1000 + total - 1);
  EXPECT_EQ(ctx.stats().steps_executed, static_cast<std::uint64_t>(total));
  EXPECT_EQ(ctx.results.size(),
            static_cast<std::size_t>(total - fanout_ctx::kHubs));
}

TEST(Cnc, ResetStatsClearsCounters) {
  hello_ctx ctx;
  ctx.tags.put(1);
  ctx.wait();
  EXPECT_GT(ctx.stats().steps_executed, 0u);
  ctx.reset_stats();
  const auto s = ctx.stats();
  EXPECT_EQ(s.steps_executed, 0u);
  EXPECT_EQ(s.items_put, 0u);
  EXPECT_EQ(s.tags_put, 0u);
}

// Items put by the environment before any tag: steps find them immediately.
TEST(Cnc, EnvironmentSeedsItemsBeforeExecution) {
  chain_ctx ctx(schedule_policy::spawn_immediately);
  ctx.values.put(9, 1000);  // pretend step 9 already ran? No: key 9 is the
                            // dependency of step 10 only.
  ctx.tags.put(10);
  ctx.wait();
  std::uint64_t v = 0;
  ctx.values.get(10, v);
  EXPECT_EQ(v, 1010u);
  EXPECT_EQ(ctx.stats().gets_failed, 0u);
}

TEST(Cnc, ItemCollectionSizeCountsPublishedItems) {
  hello_ctx ctx;
  EXPECT_EQ(ctx.data.size(), 0u);
  ctx.tags.put(1);
  ctx.tags.put(2);
  ctx.wait();
  EXPECT_EQ(ctx.data.size(), 2u);
  EXPECT_TRUE(ctx.data.contains(1));
  EXPECT_FALSE(ctx.data.contains(3));
}

// ------------------------------------- environment get on a missing item ----
// A blocking environment get on an item nobody will ever produce used to
// spin forever. It must detect quiescence — exactly like wait() — and throw
// unsatisfied_dependency naming the collection and the key.

TEST(Cnc, EnvironmentGetOnQuiescentGraphThrows) {
  hello_ctx ctx;  // no tags put: the graph is trivially quiescent
  double v = 0;
  try {
    ctx.data.get(99, v);
    FAIL() << "environment get on a never-produced item must throw";
  } catch (const unsatisfied_dependency& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("data"), std::string::npos) << msg;  // collection
    EXPECT_NE(msg.find("99"), std::string::npos) << msg;    // key
  }
}

TEST(Cnc, EnvironmentGetAfterGraphFinishedThrowsForMissingKey) {
  hello_ctx ctx;
  ctx.tags.put(1);  // produces item 1, nothing else
  ctx.wait();
  double v = 0;
  ctx.data.get(1, v);  // present: fine
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_THROW(ctx.data.get(2, v), unsatisfied_dependency);
}

// Quiescence detection must not fire while a step is merely slow: a
// producer that sleeps before putting keeps the graph active, so the
// environment get blocks and then succeeds.
struct slow_ctx;
struct slow_step {
  int execute(int tag, slow_ctx& ctx) const;
};
struct slow_ctx : context<slow_ctx> {
  step_collection<slow_ctx, slow_step, int> steps{*this, "slow"};
  tag_collection<int> tags{*this, "ctrl"};
  item_collection<int, int> out{*this, "out"};
  slow_ctx() : context(2) { tags.prescribe(steps); }
};
int slow_step::execute(int tag, slow_ctx& ctx) const {
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ctx.out.put(tag, tag * 10);
  return 0;
}

TEST(Cnc, EnvironmentGetStillWaitsForLateProducer) {
  slow_ctx ctx;
  ctx.tags.put(3);
  int v = 0;
  ctx.out.get(3, v);  // drives/waits until the slow step has put
  EXPECT_EQ(v, 30);
  ctx.wait();
}

// When the item is missing because the producing step DIED, the step's
// exception explains the failure better than the quiescence diagnostic —
// the environment get must rethrow it.
struct err_ctx;
struct err_step {
  int execute(int tag, err_ctx& ctx) const;
};
struct err_ctx : context<err_ctx> {
  step_collection<err_ctx, err_step, int> steps{*this, "dying"};
  tag_collection<int> tags{*this, "ctrl"};
  item_collection<int, int> out{*this, "out"};
  err_ctx() : context(2) { tags.prescribe(steps); }
};
int err_step::execute(int, err_ctx&) const {
  throw std::runtime_error("producer died");
}

TEST(Cnc, EnvironmentGetPrefersStepErrorOverDiagnostic) {
  err_ctx ctx;
  ctx.tags.put(1);
  int v = 0;
  try {
    ctx.out.get(1, v);
    FAIL() << "must surface the step error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "producer died");
  }
}

// --------------------------------------- wait() error-over-deadlock fix ----
// A step error used to be LOST when the graph also quiesced with parked
// instances: wait() threw the deadlock diagnostic and dropped the recorded
// exception. The real error must win — the parked steps are usually just
// downstream victims of the dead producer.

struct mixed_ctx;
struct mixed_step {
  int execute(int tag, mixed_ctx& ctx) const;
};
struct mixed_ctx : context<mixed_ctx> {
  step_collection<mixed_ctx, mixed_step, int> steps{*this, "mixed"};
  tag_collection<int> tags{*this, "ctrl"};
  item_collection<int, int> data{*this, "data"};
  mixed_ctx() : context(2) { tags.prescribe(steps); }
};
int mixed_step::execute(int tag, mixed_ctx& ctx) const {
  if (tag == 0) throw std::runtime_error("boom");
  int v = 0;
  ctx.data.get(0, v);  // never produced: parks forever
  return 0;
}

TEST(Cnc, WaitPrefersStepErrorOverDeadlockDiagnostic) {
  mixed_ctx ctx;
  ctx.tags.put(0);  // throws "boom" instead of producing item 0
  ctx.tags.put(1);  // parks forever on item 0
  try {
    ctx.wait();
    FAIL() << "wait must rethrow the step error";
  } catch (const std::runtime_error& e) {
    // (unsatisfied_dependency also derives from runtime_error — the message
    // check is what proves the step error beat the deadlock diagnostic.)
    EXPECT_STREQ(e.what(), "boom");
  }
  // The diagnostic is still produced for a second wait(): the error was
  // consumed, only the parked instance remains.
  EXPECT_THROW(ctx.wait(), unsatisfied_dependency);
}

// ------------------------------------ concurrent get-count GC stress ----
// Many items, each declared with get_count == number of consumers, consumed
// concurrently by prescheduled steps AND racing environment gets go through
// the same counted path; when the dust settles every item must be gone.

struct gcstress_ctx;
struct gcstress_step {
  int execute(int tag, gcstress_ctx& ctx) const;
  void depends(int tag, gcstress_ctx& ctx, dependency_collector& dc) const;
};
struct gcstress_ctx : context<gcstress_ctx> {
  static constexpr int kItems = 50;
  static constexpr int kConsumers = 4;  // steps per item
  std::atomic<std::uint64_t> sum{0};
  step_collection<gcstress_ctx, gcstress_step, int> steps{
      *this, "consume", gcstress_step{}, schedule_policy::preschedule};
  tag_collection<int> tags{*this, "ctrl"};
  item_collection<int, int> data{*this, "data"};
  gcstress_ctx() : context(4) { tags.prescribe(steps); }
};
int gcstress_step::execute(int tag, gcstress_ctx& ctx) const {
  int v = 0;
  ctx.data.get(tag / gcstress_ctx::kConsumers, v);
  ctx.sum.fetch_add(static_cast<std::uint64_t>(v),
                    std::memory_order_relaxed);
  return 0;
}
void gcstress_step::depends(int tag, gcstress_ctx& ctx,
                            dependency_collector& dc) const {
  dc.require(ctx.data, tag / gcstress_ctx::kConsumers);
}

TEST(Cnc, ConcurrentConsumersReclaimEveryGetCountItem) {
  gcstress_ctx ctx;
  // Prescribe every consumer BEFORE any item exists (worst case for the
  // countdowns), then publish the items from the environment while the
  // tuner is already dispatching.
  for (int t = 0; t < gcstress_ctx::kItems * gcstress_ctx::kConsumers; ++t)
    ctx.tags.put(t);
  for (int i = 0; i < gcstress_ctx::kItems; ++i)
    ctx.data.put(i, i + 1, /*get_count=*/gcstress_ctx::kConsumers);
  ctx.wait();
  const auto consumers = static_cast<std::uint64_t>(gcstress_ctx::kConsumers);
  const auto items = static_cast<std::uint64_t>(gcstress_ctx::kItems);
  EXPECT_EQ(ctx.sum.load(), consumers * items * (items + 1) / 2);
  EXPECT_EQ(ctx.stats().gets_ok, consumers * items);
  EXPECT_EQ(ctx.stats().gets_failed, 0u);  // prescheduled: no aborts
  EXPECT_EQ(ctx.data.size(), 0u);  // every item reclaimed by its last get
}

}  // namespace
