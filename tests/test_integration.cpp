// Cross-module integration and property tests:
//  * both runtimes sharing one worker pool,
//  * concurrent graphs / concurrent benchmarks,
//  * phased (wait-put-wait) graph execution,
//  * mathematical properties of the DP results that hold for EVERY
//    execution model (idempotence, symmetry, invariance, monotonicity).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "cnc/cnc.hpp"
#include "dp/fw.hpp"
#include "dp/ge.hpp"
#include "dp/sw.hpp"
#include "forkjoin/task_group.hpp"
#include "support/rng.hpp"

namespace {

using namespace rdp;
using namespace rdp::dp;

// ------------------------------------------------ shared-pool integration ----

struct pooled_ctx;
struct pooled_step {
  int execute(int tag, pooled_ctx& ctx) const;
};
struct pooled_ctx : cnc::context<pooled_ctx> {
  cnc::step_collection<pooled_ctx, pooled_step, int> steps{*this, "s"};
  cnc::tag_collection<int> tags{*this, "t"};
  cnc::item_collection<int, int> items{*this, "i"};
  explicit pooled_ctx(forkjoin::worker_pool& pool)
      : cnc::context<pooled_ctx>(pool) {
    tags.prescribe(steps);
  }
};
int pooled_step::execute(int tag, pooled_ctx& ctx) const {
  ctx.items.put(tag, tag * 3);
  return 0;
}

TEST(SharedPool, CncContextBorrowsForkJoinPool) {
  forkjoin::worker_pool pool(2);
  // Fork-join work and a CnC graph interleaved on the same workers.
  pooled_ctx ctx(pool);
  std::atomic<int> fj_sum{0};
  forkjoin::task_group g(pool);
  for (int i = 0; i < 100; ++i)
    g.spawn([&fj_sum, i] { fj_sum.fetch_add(i, std::memory_order_relaxed); });
  for (int t = 0; t < 100; ++t) ctx.tags.put(t);
  g.wait();
  ctx.wait();
  EXPECT_EQ(fj_sum.load(), 4950);
  int v = 0;
  ctx.items.get(99, v);
  EXPECT_EQ(v, 297);
}

TEST(SharedPool, TwoContextsShareOnePool) {
  forkjoin::worker_pool pool(2);
  pooled_ctx a(pool), b(pool);
  for (int t = 0; t < 64; ++t) {
    a.tags.put(t);
    b.tags.put(t);
  }
  a.wait();
  b.wait();
  EXPECT_EQ(a.stats().steps_executed, 64u);
  EXPECT_EQ(b.stats().steps_executed, 64u);
}

TEST(SharedPool, PhasedExecutionWaitPutWait) {
  forkjoin::worker_pool pool(2);
  pooled_ctx ctx(pool);
  ctx.tags.put(1);
  ctx.wait();
  EXPECT_EQ(ctx.stats().steps_executed, 1u);
  ctx.tags.put(2);  // a second wave after quiescence
  ctx.tags.put(3);
  ctx.wait();
  EXPECT_EQ(ctx.stats().steps_executed, 3u);
  int v = 0;
  ctx.items.get(3, v);
  EXPECT_EQ(v, 9);
}

TEST(SharedPool, ConcurrentBenchmarksFromTwoThreads) {
  // GE on the fork-join runtime and SW on the data-flow runtime running
  // simultaneously from different environment threads, each with its own
  // pool — nothing shared but the allocator and the machine.
  auto ge_in = make_diag_dominant(128, 3);
  auto ge_oracle = ge_in;
  ge_loop_serial(ge_oracle);
  const auto a = make_dna(128, 4), b = make_dna(128, 5);
  matrix<std::int32_t> sw_oracle(129, 129, 0);
  sw_loop_serial(sw_oracle, a, b, sw_params{});

  bool ge_ok = false, sw_ok = false;
  std::thread t1([&] {
    forkjoin::worker_pool pool(2);
    auto m = ge_in;
    ge_rdp_forkjoin(m, 16, pool);
    ge_ok = (m == ge_oracle);
  });
  std::thread t2([&] {
    matrix<std::int32_t> s(129, 129, 0);
    sw_cnc(s, a, b, sw_params{}, 16, cnc_variant::native, 2);
    sw_ok = (s == sw_oracle);
  });
  t1.join();
  t2.join();
  EXPECT_TRUE(ge_ok);
  EXPECT_TRUE(sw_ok);
}

// ----------------------------------------------------- result properties ----

class GeVariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeVariantSweep, AllSixVariantsAgreeOnRandomInstances) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 64, base = 8;
  auto in = make_diag_dominant(n, seed);
  auto oracle = in;
  ge_loop_serial(oracle);

  auto m1 = in;
  ge_rdp_serial(m1, base);
  EXPECT_TRUE(m1 == oracle);

  auto m2 = in;
  forkjoin::worker_pool pool(3);
  ge_rdp_forkjoin(m2, base, pool);
  EXPECT_TRUE(m2 == oracle);

  for (cnc_variant v : {cnc_variant::native, cnc_variant::tuner,
                        cnc_variant::manual, cnc_variant::nonblocking,
                        cnc_variant::batched, cnc_variant::sharded}) {
    auto m = in;
    ge_cnc(m, base, v, 3);
    EXPECT_TRUE(m == oracle) << to_string(v) << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeVariantSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Properties, GeLeavesUpperTriangularInputUnchanged) {
  // If nothing lies below the diagonal, every multiplier is zero and the
  // elimination is the identity — in every execution model.
  const std::size_t n = 64;
  matrix<double> u(n, n, 0.0);
  xoshiro256 rng(17);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) u(i, j) = rng.uniform(1.0, 2.0);
  auto m = u;
  ge_rdp_serial(m, 16);
  EXPECT_TRUE(m == u);
  auto m2 = u;
  ge_cnc(m2, 16, cnc_variant::tuner, 2);
  EXPECT_TRUE(m2 == u);
}

TEST(Properties, FwIsIdempotent) {
  // APSP distances are a fixpoint: running FW again must not change them.
  auto w = make_digraph(64, 0.3, 23, 1e9);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = std::floor(w.data()[i]);
  fw_rdp_serial(w, 8);
  auto again = w;
  fw_rdp_serial(again, 16);  // different base, same fixpoint
  EXPECT_TRUE(again == w);
  auto cnc_again = w;
  fw_cnc(cnc_again, 8, cnc_variant::manual, 2);
  EXPECT_TRUE(cnc_again == w);
}

TEST(Properties, FwCompleteUnitGraph) {
  // Complete digraph with unit weights: every off-diagonal distance is 1.
  const std::size_t n = 32;
  matrix<double> w(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) w(i, i) = 0.0;
  fw_cnc(w, 8, cnc_variant::native, 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_DOUBLE_EQ(w(i, j), i == j ? 0.0 : 1.0);
}

TEST(Properties, SwScoreIsSymmetric) {
  // The scoring scheme is symmetric, so score(a,b) == score(b,a).
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto a = make_dna(128, seed), b = make_dna(128, seed + 50);
    EXPECT_EQ(sw_linear_space_score(a, b, sw_params{}),
              sw_linear_space_score(b, a, sw_params{}));
  }
}

TEST(Properties, SwScoreMonotoneInMatchBonus) {
  const auto a = make_dna(128, 61), b = make_dna(128, 62);
  std::int32_t prev = -1;
  for (std::int32_t match = 1; match <= 5; ++match) {
    const sw_params p{match, -1, 1};
    const auto s = sw_linear_space_score(a, b, p);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(Properties, SwSubstringAlignsPerfectly) {
  // b is a substring of a: best local alignment scores 2*|b| under the
  // default scheme, in the data-flow model too.
  const auto a = make_dna(256, 71);
  const auto b = a.substr(64, 64);
  matrix<std::int32_t> s(a.size() + 1, b.size() + 1, 0);
  sw_loop_serial(s, a, b, sw_params{});
  EXPECT_EQ(sw_best_score(s), 2 * 64);
}

TEST(Properties, GeIsDeterministicAcrossRepeatedParallelRuns) {
  const auto in = make_diag_dominant(64, 77);
  auto first = in;
  ge_cnc(first, 8, cnc_variant::native, 4);
  for (int rep = 0; rep < 3; ++rep) {
    auto m = in;
    ge_cnc(m, 8, cnc_variant::native, 4);
    EXPECT_TRUE(m == first) << "rep " << rep;
  }
}

TEST(Properties, FwCncAgreesWithForkJoinOnDenseGraph) {
  auto w = make_digraph(64, 0.9, 31, 1e9);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.data()[i] = std::floor(w.data()[i]);
  auto fj = w, df = w;
  forkjoin::worker_pool pool(3);
  fw_rdp_forkjoin(fj, 16, pool);
  fw_cnc(df, 16, cnc_variant::nonblocking, 3);
  EXPECT_TRUE(fj == df);
}

}  // namespace
