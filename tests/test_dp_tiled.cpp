// Tiled/blocked loop algorithms (intro refs [7-10]) against the oracles,
// including non-power-of-two tile counts (the blocked schedules have no
// 2-way restriction).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "dp/fw.hpp"
#include "dp/ge.hpp"
#include "dp/sw.hpp"
#include "dp/rway.hpp"
#include "dp/tiled.hpp"
#include "support/rng.hpp"

namespace {

using namespace rdp;
using namespace rdp::dp;

class TiledSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(TiledSweep, GeBlockedBitIdenticalToLoop) {
  const auto [n, base] = GetParam();
  auto oracle = make_diag_dominant(n, 42);
  auto c = oracle;
  ge_loop_serial(oracle);
  forkjoin::worker_pool pool(4);
  ge_tiled_forkjoin(c, base, pool);
  EXPECT_TRUE(oracle == c) << "n=" << n << " base=" << base;
}

TEST_P(TiledSweep, FwBlockedEqualsLoop) {
  const auto [n, base] = GetParam();
  auto oracle = make_digraph(n, 0.3, 7, 1e9);
  for (std::size_t i = 0; i < oracle.size(); ++i)
    oracle.data()[i] = std::floor(oracle.data()[i]);
  auto c = oracle;
  fw_loop_serial(oracle);
  forkjoin::worker_pool pool(4);
  fw_tiled_forkjoin(c, base, pool);
  EXPECT_TRUE(oracle == c) << "n=" << n << " base=" << base;
}

TEST_P(TiledSweep, SwTiledWavefrontEqualsLoop) {
  const auto [n, base] = GetParam();
  const auto a = make_dna(n, 1), b = make_dna(n, 2);
  matrix<std::int32_t> oracle(n + 1, n + 1, 0);
  matrix<std::int32_t> s(n + 1, n + 1, 0);
  sw_loop_serial(oracle, a, b, sw_params{});
  forkjoin::worker_pool pool(4);
  sw_tiled_forkjoin(s, a, b, sw_params{}, base, pool);
  EXPECT_TRUE(oracle == s) << "n=" << n << " base=" << base;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBases, TiledSweep,
    ::testing::Values(std::tuple{32, 8}, std::tuple{64, 16},
                      std::tuple{64, 64},
                      // non-power-of-two tile counts: blocked schedules
                      // have no 2-way restriction
                      std::tuple{48, 16}, std::tuple{96, 32},
                      std::tuple{80, 16}, std::tuple{33, 11}));

TEST(Tiled, RejectsNonDividingBase) {
  matrix<double> c(64, 64, 1.0);
  forkjoin::worker_pool pool(2);
  EXPECT_THROW(ge_tiled_forkjoin(c, 10, pool), contract_error);
  const auto a = make_dna(64, 3);
  matrix<std::int32_t> s(65, 65, 0);
  EXPECT_THROW(sw_tiled_forkjoin(s, a, a, sw_params{}, 10, pool),
               contract_error);
}

TEST(Tiled, MatchesRwayAtFullWidth) {
  // The blocked schedule is the r = T degenerate case of the r-way
  // recursion: identical bits.
  auto in = make_diag_dominant(64, 9);
  auto blocked = in, rway = in;
  forkjoin::worker_pool pool(3);
  ge_tiled_forkjoin(blocked, 8, pool);
  ge_rdp_rway_serial(rway, 8, 8);  // 64 = 8 * 8^1: one full-width level
  EXPECT_TRUE(blocked == rway);
}

}  // namespace
