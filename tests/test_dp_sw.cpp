// Correctness of Smith-Waterman local alignment across execution models.
// Integer scoring => exact equality everywhere.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "dp/sw.hpp"
#include "support/rng.hpp"

namespace {

using namespace rdp;
using namespace rdp::dp;

matrix<std::int32_t> zero_table(std::size_t n) {
  return matrix<std::int32_t>(n + 1, n + 1, 0);
}

TEST(SwLoop, HandComputedExample) {
  // a = "GGTT", b = "GTTA", match=+2 mismatch=-1 gap=1.
  // Best local alignment: "GTT" vs "GTT" -> score 6.
  const std::string a = "GGTT", b = "GTTA";
  auto s = zero_table(4);
  sw_loop_serial(s, a, b, sw_params{});
  EXPECT_EQ(sw_best_score(s), 6);
  // Boundary row/column stays zero.
  for (std::size_t i = 0; i <= 4; ++i) {
    EXPECT_EQ(s(i, 0), 0);
    EXPECT_EQ(s(0, i), 0);
  }
}

TEST(SwLoop, IdenticalSequencesScoreFullMatch) {
  const auto a = make_dna(64, 5);
  auto s = zero_table(64);
  sw_loop_serial(s, a, a, sw_params{});
  EXPECT_EQ(sw_best_score(s), 2 * 64);
}

TEST(SwLoop, DisjointAlphabetsScoreSingleMismatchFloor) {
  // No positive-scoring pair exists: the table must be all zeros.
  const std::string a(32, 'A'), b(32, 'T');
  auto s = zero_table(32);
  sw_loop_serial(s, a, b, sw_params{});
  EXPECT_EQ(sw_best_score(s), 0);
}

TEST(SwLinearSpace, MatchesFullTableScore) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto a = make_dna(128, seed);
    const auto b = make_dna(128, seed + 100);
    auto s = zero_table(128);
    sw_loop_serial(s, a, b, sw_params{});
    EXPECT_EQ(sw_linear_space_score(a, b, sw_params{}), sw_best_score(s))
        << "seed=" << seed;
  }
}

TEST(SwLinearSpace, HandlesUnequalLengths) {
  const std::string a = "ACGTACGTAC", b = "CGT";
  sw_params p;
  // Best: exact "CGT" match -> 6.
  EXPECT_EQ(sw_linear_space_score(a, b, p), 6);
}

class SwRdpSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SwRdpSweep, SerialRecursionEqualsLoop) {
  const auto [n, base] = GetParam();
  const auto a = make_dna(n, 1), b = make_dna(n, 2);
  auto oracle = zero_table(n);
  auto s = zero_table(n);
  sw_loop_serial(oracle, a, b, sw_params{});
  sw_rdp_serial(s, a, b, sw_params{}, base);
  EXPECT_TRUE(oracle == s) << "n=" << n << " base=" << base;
}

TEST_P(SwRdpSweep, ForkJoinEqualsLoop) {
  const auto [n, base] = GetParam();
  const auto a = make_dna(n, 1), b = make_dna(n, 2);
  auto oracle = zero_table(n);
  auto s = zero_table(n);
  sw_loop_serial(oracle, a, b, sw_params{});
  forkjoin::worker_pool pool(4);
  sw_rdp_forkjoin(s, a, b, sw_params{}, base, pool);
  EXPECT_TRUE(oracle == s) << "n=" << n << " base=" << base;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBases, SwRdpSweep,
    ::testing::Values(std::tuple{16, 4}, std::tuple{16, 16}, std::tuple{32, 8},
                      std::tuple{64, 8}, std::tuple{64, 16},
                      std::tuple{128, 32}, std::tuple{256, 64},
                      std::tuple{256, 256}));

TEST(SwRdp, RejectsUnequalOrNonPow2) {
  const auto a = make_dna(32, 1), b = make_dna(16, 2);
  auto s = matrix<std::int32_t>(33, 17, 0);
  EXPECT_THROW(sw_rdp_serial(s, a, b, sw_params{}, 8), contract_error);
  const auto c = make_dna(48, 3);
  auto s2 = matrix<std::int32_t>(49, 49, 0);
  EXPECT_THROW(sw_rdp_serial(s2, c, c, sw_params{}, 8), contract_error);
}

// ----------------------------------------------------------- data-flow ----

class SwCncSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, cnc_variant>> {};

TEST_P(SwCncSweep, CncEqualsLoop) {
  const auto [n, base, variant] = GetParam();
  const auto a = make_dna(n, 21), b = make_dna(n, 22);
  auto oracle = zero_table(n);
  auto s = zero_table(n);
  sw_loop_serial(oracle, a, b, sw_params{});
  const auto info = sw_cnc(s, a, b, sw_params{}, base, variant, 4);
  EXPECT_TRUE(oracle == s)
      << "n=" << n << " base=" << base << " variant=" << to_string(variant);

  const std::uint64_t t = n / base;
  EXPECT_EQ(info.stats.items_put, t * t);  // one item per tile
  if (variant != cnc_variant::native) {
    EXPECT_EQ(info.stats.gets_failed, 0u);
    EXPECT_EQ(info.stats.steps_aborted, 0u);
  }
  if (variant == cnc_variant::manual)
    EXPECT_EQ(info.stats.steps_prescribed, t * t);
}

INSTANTIATE_TEST_SUITE_P(
    SizesBasesVariants, SwCncSweep,
    ::testing::Combine(::testing::Values<std::size_t>(32, 64, 128),
                       ::testing::Values<std::size_t>(8, 16, 32),
                       ::testing::Values(cnc_variant::native,
                                         cnc_variant::tuner,
                                         cnc_variant::manual,
                                         cnc_variant::nonblocking)));

TEST(SwCnc, SingleTileProblem) {
  const auto a = make_dna(16, 9), b = make_dna(16, 10);
  auto oracle = zero_table(16);
  auto s = zero_table(16);
  sw_loop_serial(oracle, a, b, sw_params{});
  const auto info = sw_cnc(s, a, b, sw_params{}, 16, cnc_variant::native, 2);
  EXPECT_TRUE(oracle == s);
  EXPECT_EQ(info.stats.items_put, 1u);
}

TEST(SwCnc, TunerVariantsCollectAllButTheCornerItem) {
  const auto a = make_dna(128, 51), b = make_dna(128, 52);
  for (cnc_variant v : {cnc_variant::tuner, cnc_variant::manual}) {
    auto s = zero_table(128);
    const auto info = sw_cnc(s, a, b, sw_params{}, 16, v, 4);
    // Only the bottom-right tile (no consumers) survives collection.
    EXPECT_EQ(info.items_live_at_end, 1u) << to_string(v);
  }
  auto s = zero_table(128);
  const auto native = sw_cnc(s, a, b, sw_params{}, 16, cnc_variant::native, 4);
  EXPECT_EQ(native.items_live_at_end, 64u);  // 8x8 tiles, all kept
}

TEST(SwCnc, ScoresMatchLinearSpaceScorer) {
  const auto a = make_dna(128, 31), b = make_dna(128, 32);
  auto s = zero_table(128);
  sw_cnc(s, a, b, sw_params{}, 16, cnc_variant::tuner, 4);
  EXPECT_EQ(sw_best_score(s), sw_linear_space_score(a, b, sw_params{}));
}

TEST(SwCnc, CustomScoringParameters) {
  const sw_params p{/*match=*/5, /*mismatch=*/-4, /*gap=*/2};
  const auto a = make_dna(64, 41), b = make_dna(64, 42);
  auto oracle = zero_table(64);
  auto s = zero_table(64);
  sw_loop_serial(oracle, a, b, p);
  sw_cnc(s, a, b, p, 8, cnc_variant::manual, 4);
  EXPECT_TRUE(oracle == s);
}

}  // namespace
